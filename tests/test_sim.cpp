// Tests for the discrete-event runtime emulator: determinism, conservation
// invariants, contention behavior, programming-model asymmetries, and the
// structural application models.
#include <gtest/gtest.h>

#include "cedr/obs/chrome_trace.h"
#include "cedr/obs/span.h"
#include "cedr/sim/model.h"
#include "cedr/sim/simulator.h"

namespace cedr::sim {
namespace {

SimApp tiny_app(std::size_t kernels = 8, bool parallel = true) {
  SimApp app;
  app.name = "tiny";
  app.frame_mbits = 1.0;
  app.segments.push_back(SimSegment::glue(100e-6));
  app.segments.push_back(SimSegment::batch(platform::KernelId::kFft, 256,
                                           4096, kernels, parallel));
  app.segments.push_back(SimSegment::glue(50e-6));
  return app;
}

SimConfig base_config(ProgrammingModel model = ProgrammingModel::kApiBased) {
  SimConfig config;
  config.platform = platform::zcu102(3, 1, 0);
  config.scheduler = "EFT";
  config.model = model;
  return config;
}

TEST(SimModel, TaskCounts) {
  const SimApp app = tiny_app(8);
  EXPECT_EQ(app.kernel_call_count(), 8u);
  EXPECT_EQ(app.dag_task_count(), 10u);  // 8 kernels + 2 glue nodes
}

TEST(SimModel, PaperWorkloadShapes) {
  const SimApp pd = make_pulse_doppler_model();
  // 128 FFT + 128 ZIP + 128 IFFT + 256 Doppler FFT = 640 kernel calls;
  // 512 of them are transforms, matching §III's "512".
  EXPECT_EQ(pd.kernel_call_count(), 640u);
  const SimApp tx = make_wifi_tx_model();
  EXPECT_EQ(tx.kernel_call_count(), 100u);  // "100" IFFTs
  const SimApp ld_full = make_lane_detection_model(1);
  std::size_t ffts = 0;
  std::size_t iffts = 0;
  for (const SimSegment& seg : ld_full.segments) {
    if (seg.kind != SimSegment::Kind::kKernelBatch) continue;
    if (seg.kernel == platform::KernelId::kFft) ffts += seg.count;
    if (seg.kernel == platform::KernelId::kIfft) iffts += seg.count;
    if (seg.kernel != platform::KernelId::kGeneric) {
      EXPECT_EQ(seg.problem_size, 1024u);  // 1024-point transforms
    }
  }
  EXPECT_EQ(ffts, 16384u);   // paper's instance counts at scale 1
  EXPECT_EQ(iffts, 8192u);
  const SimApp ld_scaled = make_lane_detection_model(8);
  EXPECT_LT(ld_scaled.kernel_call_count(), ld_full.kernel_call_count() / 6);
}

TEST(SimModel, SegmentRanksDecreaseTowardExit) {
  const SimApp pd = make_pulse_doppler_model();
  const auto ranks = pd.segment_ranks(platform::zcu102(3, 1, 0));
  ASSERT_EQ(ranks.size(), pd.segments.size());
  for (std::size_t i = 1; i < ranks.size(); ++i) {
    EXPECT_GT(ranks[i - 1], ranks[i]);
  }
  EXPECT_GT(ranks.back(), 0.0);
}

TEST(Simulate, RejectsBadInputs) {
  const SimConfig config = base_config();
  EXPECT_FALSE(simulate(config, {}).ok());
  const Arrival null_app{nullptr, 0.0};
  EXPECT_FALSE(simulate(config, {&null_app, 1}).ok());
  const SimApp app = tiny_app();
  const Arrival negative{&app, -1.0};
  EXPECT_FALSE(simulate(config, {&negative, 1}).ok());
  SimConfig bad_sched = base_config();
  bad_sched.scheduler = "NOPE";
  const Arrival ok{&app, 0.0};
  EXPECT_FALSE(simulate(bad_sched, {&ok, 1}).ok());
}

TEST(Simulate, SingleAppCompletesWithSaneMetrics) {
  const SimApp app = tiny_app();
  const Arrival arrival{&app, 0.0};
  const auto metrics = simulate(base_config(), {&arrival, 1});
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->apps, 1u);
  EXPECT_EQ(metrics->tasks_executed, 8u);  // API mode schedules kernels only
  EXPECT_GT(metrics->avg_execution_time, 0.0);
  EXPECT_GE(metrics->makespan, metrics->avg_execution_time);
  EXPECT_GT(metrics->runtime_overhead, 0.0);
  EXPECT_GE(metrics->sched_rounds, 1u);
  ASSERT_EQ(metrics->pe_busy.size(), 4u);  // 3 CPU + 1 FFT
}

TEST(Simulate, DagModeSchedulesGlueNodesToo) {
  const SimApp app = tiny_app();
  const Arrival arrival{&app, 0.0};
  const auto metrics =
      simulate(base_config(ProgrammingModel::kDagBased), {&arrival, 1});
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->tasks_executed, 10u);  // kernels + glue nodes
}

TEST(Simulate, DeterministicAcrossRuns) {
  const SimApp app = tiny_app(32);
  std::vector<Arrival> arrivals;
  for (int i = 0; i < 6; ++i) {
    arrivals.push_back({&app, i * 0.7e-3});
  }
  const auto a = simulate(base_config(), arrivals);
  const auto b = simulate(base_config(), arrivals);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->makespan, b->makespan);
  EXPECT_DOUBLE_EQ(a->avg_execution_time, b->avg_execution_time);
  EXPECT_DOUBLE_EQ(a->total_sched_time, b->total_sched_time);
  EXPECT_EQ(a->tasks_executed, b->tasks_executed);
}

TEST(Simulate, ArrivalsNeedNotBeSorted) {
  const SimApp app = tiny_app();
  const std::vector<Arrival> shuffled{{&app, 3e-3}, {&app, 0.0}, {&app, 1e-3}};
  const std::vector<Arrival> sorted{{&app, 0.0}, {&app, 1e-3}, {&app, 3e-3}};
  const auto a = simulate(base_config(), shuffled);
  const auto b = simulate(base_config(), sorted);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->makespan, b->makespan);
}

TEST(Simulate, WorkConservation) {
  // Total per-PE busy work must equal the work implied by the cost model
  // for the tasks each mode schedules (API: kernels only).
  SimConfig config = base_config();
  config.platform = platform::zcu102(3, 0, 0);  // CPUs only: no occupancy x3
  const SimApp app = tiny_app(16);
  const Arrival arrival{&app, 0.0};
  const auto metrics = simulate(config, {&arrival, 1});
  ASSERT_TRUE(metrics.ok());
  const double expected_kernel_work =
      16.0 * config.platform.costs.estimate(platform::KernelId::kFft,
                                            platform::PeClass::kCpu, 256, 4096);
  double total_busy = 0.0;
  for (const double b : metrics->pe_busy) total_busy += b;
  // Busy work includes the per-call signal overhead; allow that margin.
  EXPECT_GE(total_busy, expected_kernel_work);
  EXPECT_LT(total_busy, expected_kernel_work * 2.5);
}

TEST(Simulate, BlockingIsSlowerThanNonBlocking) {
  const SimApp blocking = tiny_app(32, /*parallel=*/false);
  const SimApp nonblocking = tiny_app(32, /*parallel=*/true);
  const Arrival ab{&blocking, 0.0};
  const Arrival an{&nonblocking, 0.0};
  // CPU-only platform isolates the issue-pattern effect from accelerator
  // management-thread occupancy.
  SimConfig config = base_config();
  config.platform = platform::zcu102(3, 0, 0);
  const auto mb = simulate(config, {&ab, 1});
  const auto mn = simulate(config, {&an, 1});
  ASSERT_TRUE(mb.ok());
  ASSERT_TRUE(mn.ok());
  // Serial call-by-call issue pays the per-call round trip every time.
  EXPECT_GT(mb->avg_execution_time, 1.5 * mn->avg_execution_time);
}

TEST(Simulate, OverlappingArrivalsRaisePerAppExecTime) {
  const SimApp app = tiny_app(64);
  std::vector<Arrival> spread;
  std::vector<Arrival> burst;
  for (int i = 0; i < 8; ++i) {
    spread.push_back({&app, i * 50e-3});
    burst.push_back({&app, i * 0.2e-3});
  }
  const auto slow = simulate(base_config(), spread);
  const auto fast = simulate(base_config(), burst);
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(fast.ok());
  EXPECT_GT(fast->avg_execution_time, slow->avg_execution_time);
}

TEST(Simulate, EtfOverheadGrowsWithQueueInDagMode) {
  const SimApp app = tiny_app(64);
  std::vector<Arrival> arrivals;
  for (int i = 0; i < 8; ++i) arrivals.push_back({&app, i * 0.1e-3});
  SimConfig etf = base_config(ProgrammingModel::kDagBased);
  etf.scheduler = "ETF";
  SimConfig eft = base_config(ProgrammingModel::kDagBased);
  eft.scheduler = "EFT";
  const auto m_etf = simulate(etf, arrivals);
  const auto m_eft = simulate(eft, arrivals);
  ASSERT_TRUE(m_etf.ok());
  ASSERT_TRUE(m_eft.ok());
  EXPECT_GT(m_etf->total_sched_time, 5.0 * m_eft->total_sched_time);
}

TEST(Simulate, ApiModeShrinksEtfOverhead) {
  // Fig. 7's core claim, in miniature.
  const SimApp app = tiny_app(64, /*parallel=*/false);
  std::vector<Arrival> arrivals;
  for (int i = 0; i < 8; ++i) arrivals.push_back({&app, i * 0.1e-3});
  SimConfig dag = base_config(ProgrammingModel::kDagBased);
  dag.scheduler = "ETF";
  SimConfig api = base_config(ProgrammingModel::kApiBased);
  api.scheduler = "ETF";
  const auto m_dag = simulate(dag, arrivals);
  const auto m_api = simulate(api, arrivals);
  ASSERT_TRUE(m_dag.ok());
  ASSERT_TRUE(m_api.ok());
  EXPECT_GT(m_dag->avg_sched_overhead, 2.0 * m_api->avg_sched_overhead);
  EXPECT_GT(m_dag->max_ready_queue, m_api->max_ready_queue);
}

TEST(Simulate, AddingAcceleratorsAddsContention) {
  // Fig. 10a's core claim: with CPUs fixed, more FFT accelerators means
  // more management threads on the same cores and higher execution time
  // under RR, which insists on using every PE.
  const SimApp ld = make_lane_detection_model(32);
  std::vector<Arrival> arrivals{{&ld, 0.0}};
  double exec[2] = {0, 0};
  int idx = 0;
  for (const std::size_t ffts : {0u, 8u}) {
    SimConfig config = base_config();
    config.platform = platform::zcu102(3, ffts, 0);
    config.scheduler = "RR";
    const auto metrics = simulate(config, arrivals);
    ASSERT_TRUE(metrics.ok());
    exec[idx++] = metrics->avg_execution_time;
  }
  EXPECT_GT(exec[1], exec[0]);
}

TEST(Simulate, MoreCpuWorkersHelpOnJetson) {
  // Fig. 10b's left half: 1 -> 5 CPU workers reduces execution time.
  // A CPU-heavy workload (PD's small transforms favor the Carmel cores
  // over the GPU) exposes the worker-parallelism effect.
  const SimApp pd = make_pulse_doppler_model();
  std::vector<Arrival> arrivals{{&pd, 0.0}, {&pd, 1e-4}, {&pd, 2e-4}};
  double exec[2] = {0, 0};
  int idx = 0;
  for (const std::size_t cpus : {1u, 5u}) {
    SimConfig config = base_config();
    config.platform = platform::jetson(cpus, 1);
    const auto metrics = simulate(config, arrivals);
    ASSERT_TRUE(metrics.ok());
    exec[idx++] = metrics->avg_execution_time;
  }
  EXPECT_GT(exec[0], exec[1]);
}

TEST(Simulate, HorizonGuardAborts) {
  SimConfig config = base_config();
  config.max_virtual_time_s = 1e-6;  // impossible deadline
  const SimApp app = tiny_app();
  const Arrival arrival{&app, 0.0};
  EXPECT_EQ(simulate(config, {&arrival, 1}).status().code(),
            StatusCode::kAborted);
}

// ---- span-stream parity (obs::SpanTracer on virtual time) ------------------

TEST(SimObs, SpanStreamStructure) {
  obs::SpanTracer tracer;
  SimConfig config = base_config();
  config.tracer = &tracer;
  const SimApp app = tiny_app(8);
  std::vector<Arrival> arrivals{{&app, 0.0}, {&app, 1e-3}};
  const auto metrics = simulate(config, arrivals);
  ASSERT_TRUE(metrics.ok());

  const std::vector<obs::SpanEvent> events = tracer.snapshot();
  ASSERT_FALSE(events.empty());
  std::size_t arrivals_seen = 0, completes_seen = 0;
  std::size_t flow_begins = 0, flow_ends = 0, worker_spans = 0,
              sched_spans = 0;
  for (const obs::SpanEvent& e : events) {
    // Every timestamp is virtual time inside the run.
    EXPECT_GE(e.ts, 0.0);
    EXPECT_LE(e.ts, metrics->makespan + 1e-9);
    const std::string name = e.name;
    if (name == "app_arrival") ++arrivals_seen;
    if (name == "app_complete") ++completes_seen;
    if (e.kind == obs::EventKind::kFlowBegin) ++flow_begins;
    if (e.kind == obs::EventKind::kFlowEnd) ++flow_ends;
    if (e.kind == obs::EventKind::kComplete) {
      if (e.category == obs::Category::kWorker) {
        ++worker_spans;
        EXPECT_GE(e.dur, 0.0);
        EXPECT_GT(e.tid, 0u);  // worker spans live on PE tracks
      } else if (e.category == obs::Category::kSched) {
        ++sched_spans;
        EXPECT_EQ(e.tid, 0u);  // scheduler runs on the main loop track
      }
    }
  }
  EXPECT_EQ(arrivals_seen, arrivals.size());
  EXPECT_EQ(completes_seen, arrivals.size());
  // Every executed task came from one enqueue flow and one execute flow end.
  EXPECT_EQ(worker_spans, metrics->tasks_executed);
  EXPECT_EQ(flow_ends, metrics->tasks_executed);
  EXPECT_EQ(flow_begins, flow_ends);  // no retries in a fault-free run
  EXPECT_EQ(sched_spans, metrics->sched_rounds);
}

TEST(SimObs, GoldenChromeTrace) {
  // The engine is deterministic, timestamps are virtual, and the exporter
  // sorts stably: two identical runs must export byte-identical JSON.
  const SimApp app = tiny_app(6);
  std::vector<Arrival> arrivals{{&app, 0.0}, {&app, 5e-4}, {&app, 2e-3}};
  auto run_once = [&]() -> std::string {
    obs::SpanTracer tracer;
    SimConfig config = base_config(ProgrammingModel::kDagBased);
    config.tracer = &tracer;
    const auto metrics = simulate(config, arrivals);
    EXPECT_TRUE(metrics.ok());
    return obs::chrome_trace_json(tracer.snapshot()).dump();
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // And it is a loadable trace document.
  auto doc = json::parse(first);
  ASSERT_TRUE(doc.ok());
  const json::Value* rows = doc->find("traceEvents");
  ASSERT_NE(rows, nullptr);
  EXPECT_FALSE(rows->as_array().empty());
}

TEST(SimObs, FaultRunEmitsFaultInstants) {
  obs::SpanTracer tracer;
  SimConfig config = base_config(ProgrammingModel::kDagBased);
  config.tracer = &tracer;
  config.faults.seed = 42;
  config.faults.defaults.fail_prob = 0.35;
  config.faults.policy.max_retries = 4;
  config.faults.policy.quarantine_threshold = 3;
  config.faults.policy.probe_period_s = 5e-3;
  const SimApp app = tiny_app(16);
  const Arrival arrival{&app, 0.0};
  const auto metrics = simulate(config, {&arrival, 1});
  ASSERT_TRUE(metrics.ok());
  ASSERT_GT(metrics->faults_injected, 0u);
  std::size_t fault_instants = 0, retry_instants = 0;
  for (const obs::SpanEvent& e : tracer.snapshot()) {
    if (e.category != obs::Category::kFault) continue;
    const std::string name = e.name;
    if (name == "fault") ++fault_instants;
    if (name == "retry_backoff") ++retry_instants;
  }
  EXPECT_EQ(fault_instants, metrics->faults_injected);
  EXPECT_EQ(retry_instants, metrics->tasks_retried);
}

TEST(SimObs, TracingDoesNotPerturbVirtualTime) {
  // The tracer is an observer: metrics with and without it are identical.
  const SimApp app = tiny_app(8);
  std::vector<Arrival> arrivals{{&app, 0.0}, {&app, 1e-3}};
  SimConfig plain = base_config();
  const auto a = simulate(plain, arrivals);
  obs::SpanTracer tracer;
  SimConfig traced = base_config();
  traced.tracer = &tracer;
  const auto b = simulate(traced, arrivals);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->makespan, b->makespan);
  EXPECT_EQ(a->tasks_executed, b->tasks_executed);
  EXPECT_EQ(a->runtime_overhead, b->runtime_overhead);
  EXPECT_GT(tracer.recorded(), 0u);
}

TEST(Simulate, RuntimeOverheadLowerInApiMode) {
  // Fig. 5's direction in miniature: same workload, API overhead below DAG.
  const SimApp pd = make_pulse_doppler_model();
  std::vector<Arrival> arrivals;
  for (int i = 0; i < 5; ++i) arrivals.push_back({&pd, i * 1e-3});
  const auto dag =
      simulate(base_config(ProgrammingModel::kDagBased), arrivals);
  const auto api =
      simulate(base_config(ProgrammingModel::kApiBased), arrivals);
  ASSERT_TRUE(dag.ok());
  ASSERT_TRUE(api.ok());
  EXPECT_LT(api->runtime_overhead_per_app, dag->runtime_overhead_per_app);
}

}  // namespace
}  // namespace cedr::sim
