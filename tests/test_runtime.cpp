// Tests for the threaded CEDR runtime: lifecycle, DAG execution, API
// execution, tracing, counters and error paths.
#include <gtest/gtest.h>

#include <atomic>

#include "cedr/api/impls.h"
#include "cedr/cedr.h"
#include "cedr/runtime/runtime.h"

namespace cedr::rt {
namespace {

RuntimeConfig small_config() {
  RuntimeConfig config;
  config.platform = platform::host(/*cpus=*/2, /*ffts=*/1);
  config.scheduler = "EFT";
  return config;
}

TEST(RuntimeLifecycle, StartAndShutdown) {
  Runtime runtime(small_config());
  ASSERT_TRUE(runtime.start().ok());
  EXPECT_EQ(runtime.submitted_apps(), 0u);
  EXPECT_TRUE(runtime.shutdown().ok());
  // Idempotent shutdown.
  EXPECT_TRUE(runtime.shutdown().ok());
}

TEST(RuntimeLifecycle, DoubleStartFails) {
  Runtime runtime(small_config());
  ASSERT_TRUE(runtime.start().ok());
  EXPECT_EQ(runtime.start().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(runtime.shutdown().ok());
}

TEST(RuntimeLifecycle, BadSchedulerRejected) {
  RuntimeConfig config = small_config();
  config.scheduler = "BOGUS";
  Runtime runtime(config);
  EXPECT_FALSE(runtime.start().ok());
}

TEST(RuntimeLifecycle, BadPlatformRejected) {
  RuntimeConfig config = small_config();
  config.platform.pes.clear();
  Runtime runtime(config);
  EXPECT_FALSE(runtime.start().ok());
}

TEST(RuntimeLifecycle, SubmitBeforeStartFails) {
  Runtime runtime(small_config());
  EXPECT_EQ(runtime.submit_api("x", [] {}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(RuntimeApi, ExecutesMainOnOwnThreadWithBinding) {
  Runtime runtime(small_config());
  ASSERT_TRUE(runtime.start().ok());
  std::atomic<bool> was_attached{false};
  auto instance = runtime.submit_api("probe", [&runtime, &was_attached] {
    was_attached = thread_binding().runtime == &runtime;
  });
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(runtime.wait_app(*instance, 30.0).ok());
  EXPECT_TRUE(was_attached.load());
  EXPECT_EQ(runtime.completed_apps(), 1u);
  EXPECT_TRUE(runtime.shutdown().ok());
}

TEST(RuntimeApi, SchedulesKernelCallsAndTracesThem) {
  Runtime runtime(small_config());
  ASSERT_TRUE(runtime.start().ok());
  auto instance = runtime.submit_api("fft_app", [] {
    std::vector<cedr_cplx> buf(128);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(CEDR_FFT(buf.data(), buf.data(), buf.size()).ok());
    }
  });
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(runtime.wait_all(30.0).ok());
  EXPECT_TRUE(runtime.shutdown().ok());

  const auto tasks = runtime.trace_log().tasks();
  EXPECT_EQ(tasks.size(), 10u);
  for (const auto& task : tasks) {
    EXPECT_EQ(task.kernel_name, "FFT");
    EXPECT_GE(task.start_time, task.enqueue_time);
    EXPECT_GE(task.end_time, task.start_time);
    EXPECT_EQ(task.app_instance_id, *instance);
  }
  EXPECT_EQ(runtime.counters().get("kernels_enqueued"), 10u);
  EXPECT_EQ(runtime.counters().get("tasks_executed"), 10u);
  EXPECT_EQ(runtime.counters().get("apps_completed"), 1u);
  const auto apps = runtime.trace_log().apps();
  ASSERT_EQ(apps.size(), 1u);
  EXPECT_GE(apps[0].execution_time(), 0.0);
}

TEST(RuntimeApi, ManyConcurrentApps) {
  Runtime runtime(small_config());
  ASSERT_TRUE(runtime.start().ok());
  std::atomic<int> finished{0};
  constexpr int kApps = 8;
  for (int a = 0; a < kApps; ++a) {
    auto instance = runtime.submit_api("app" + std::to_string(a), [&finished] {
      std::vector<cedr_cplx> buf(64);
      for (int i = 0; i < 5; ++i) {
        (void)CEDR_FFT(buf.data(), buf.data(), buf.size());
      }
      ++finished;
    });
    ASSERT_TRUE(instance.ok());
  }
  ASSERT_TRUE(runtime.wait_all(60.0).ok());
  EXPECT_EQ(finished.load(), kApps);
  EXPECT_EQ(runtime.completed_apps(), static_cast<std::uint64_t>(kApps));
  EXPECT_EQ(runtime.trace_log().tasks().size(), 40u);
  EXPECT_TRUE(runtime.shutdown().ok());
}

TEST(RuntimeApi, EnqueueFromUnboundThreadFails) {
  Runtime runtime(small_config());
  ASSERT_TRUE(runtime.start().ok());
  KernelRequest request;
  request.kernel = platform::KernelId::kFft;
  request.problem_size = 64;
  EXPECT_EQ(runtime.enqueue_kernel(std::move(request),
                                   std::make_shared<Completion>())
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(runtime.shutdown().ok());
}

TEST(RuntimeDag, ExecutesGraphRespectingDependencies) {
  Runtime runtime(small_config());
  ASSERT_TRUE(runtime.start().ok());

  // 0,1 -> 2 -> 3 with order recorded by the task bodies.
  auto app = std::make_shared<task::AppDescriptor>();
  app->name = "dag";
  auto order = std::make_shared<std::vector<int>>();
  auto order_mutex = std::make_shared<std::mutex>();
  for (task::TaskId id = 0; id < 4; ++id) {
    task::Task t;
    t.id = id;
    t.name = "n" + std::to_string(id);
    t.kernel = platform::KernelId::kGeneric;
    t.problem_size = 1000;
    t.impls = api::make_generic_impls([order, order_mutex, id] {
      std::lock_guard lock(*order_mutex);
      order->push_back(static_cast<int>(id));
    });
    ASSERT_TRUE(app->graph.add_task(std::move(t)).ok());
  }
  ASSERT_TRUE(app->graph.add_edge(0, 2).ok());
  ASSERT_TRUE(app->graph.add_edge(1, 2).ok());
  ASSERT_TRUE(app->graph.add_edge(2, 3).ok());

  auto instance = runtime.submit_dag(app);
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(runtime.wait_all(30.0).ok());
  EXPECT_TRUE(runtime.shutdown().ok());

  ASSERT_EQ(order->size(), 4u);
  auto position = [&](int id) {
    return std::find(order->begin(), order->end(), id) - order->begin();
  };
  EXPECT_LT(position(0), position(2));
  EXPECT_LT(position(1), position(2));
  EXPECT_LT(position(2), position(3));
  EXPECT_EQ(runtime.trace_log().tasks().size(), 4u);
}

TEST(RuntimeDag, RejectsBadDescriptors) {
  Runtime runtime(small_config());
  ASSERT_TRUE(runtime.start().ok());
  EXPECT_FALSE(runtime.submit_dag(nullptr).ok());
  auto empty = std::make_shared<task::AppDescriptor>();
  empty->name = "empty";
  EXPECT_FALSE(runtime.submit_dag(empty).ok());
  auto cyclic = std::make_shared<task::AppDescriptor>();
  cyclic->name = "cyclic";
  for (task::TaskId id = 0; id < 2; ++id) {
    task::Task t;
    t.id = id;
    ASSERT_TRUE(cyclic->graph.add_task(std::move(t)).ok());
  }
  ASSERT_TRUE(cyclic->graph.add_edge(0, 1).ok());
  ASSERT_TRUE(cyclic->graph.add_edge(1, 0).ok());
  EXPECT_FALSE(runtime.submit_dag(cyclic).ok());
  EXPECT_TRUE(runtime.shutdown().ok());
}

TEST(RuntimeDag, MixedWithApiApps) {
  Runtime runtime(small_config());
  ASSERT_TRUE(runtime.start().ok());
  auto app = std::make_shared<task::AppDescriptor>();
  app->name = "mini_dag";
  for (task::TaskId id = 0; id < 3; ++id) {
    task::Task t;
    t.id = id;
    t.kernel = platform::KernelId::kGeneric;
    t.impls = api::make_generic_impls({}, 1000);
    ASSERT_TRUE(app->graph.add_task(std::move(t)).ok());
    if (id > 0) ASSERT_TRUE(app->graph.add_edge(id - 1, id).ok());
  }
  ASSERT_TRUE(runtime.submit_dag(app).ok());
  ASSERT_TRUE(runtime
                  .submit_api("api_app",
                              [] {
                                std::vector<cedr_cplx> buf(64);
                                (void)CEDR_FFT(buf.data(), buf.data(), 64);
                              })
                  .ok());
  ASSERT_TRUE(runtime.wait_all(30.0).ok());
  EXPECT_EQ(runtime.completed_apps(), 2u);
  EXPECT_EQ(runtime.trace_log().tasks().size(), 4u);
  EXPECT_TRUE(runtime.shutdown().ok());
}

TEST(RuntimeTrace, SchedulingRoundsRecorded) {
  Runtime runtime(small_config());
  ASSERT_TRUE(runtime.start().ok());
  auto instance = runtime.submit_api("app", [] {
    std::vector<cedr_cplx> buf(64);
    for (int i = 0; i < 4; ++i) (void)CEDR_FFT(buf.data(), buf.data(), 64);
  });
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(runtime.wait_all(30.0).ok());
  EXPECT_TRUE(runtime.shutdown().ok());
  const auto rounds = runtime.trace_log().sched_rounds();
  EXPECT_GE(rounds.size(), 1u);
  std::size_t assigned = 0;
  for (const auto& round : rounds) {
    assigned += round.assigned;
    EXPECT_GE(round.decision_time, 0.0);
  }
  EXPECT_EQ(assigned, 4u);
  EXPECT_GT(runtime.runtime_overhead_s(), 0.0);
}

TEST(RuntimeTasks, FailingImplReportsWithoutKillingRuntime) {
  Runtime runtime(small_config());
  ASSERT_TRUE(runtime.start().ok());
  auto instance = runtime.submit_api("failing", [] {
    KernelRequest request;
    request.name = "boom";
    request.kernel = platform::KernelId::kGeneric;
    request.impls[static_cast<std::size_t>(platform::PeClass::kCpu)] =
        [](task::ExecContext&) { return Internal("intentional failure"); };
    auto completion = std::make_shared<Completion>();
    ASSERT_TRUE(thread_binding()
                    .runtime->enqueue_kernel(std::move(request), completion)
                    .ok());
    EXPECT_EQ(completion->wait().code(), StatusCode::kInternal);
  });
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(runtime.wait_all(30.0).ok());
  EXPECT_EQ(runtime.counters().get("tasks_failed"), 1u);
  EXPECT_TRUE(runtime.shutdown().ok());
}

TEST(Completion, SignalAndWaitSemantics) {
  Completion completion;
  EXPECT_FALSE(completion.done());
  EXPECT_EQ(completion.wait_for(0.01).code(), StatusCode::kUnavailable);
  completion.signal(Status::Ok());
  EXPECT_TRUE(completion.done());
  EXPECT_TRUE(completion.wait().ok());
  EXPECT_TRUE(completion.wait_for(0.01).ok());
}

TEST(Runtime, AcceleratorPeExecutesThroughDevice) {
  RuntimeConfig config;
  config.platform = platform::host(/*cpus=*/1, /*ffts=*/1);
  // Make the FFT accelerator irresistible to EFT so it gets used.
  config.platform.costs.set(platform::KernelId::kFft,
                            platform::PeClass::kFftAccel,
                            {.fixed_s = 1e-9});
  config.platform.costs.set_transfer(platform::PeClass::kFftAccel, 0.0, 0.0);
  config.scheduler = "EFT";
  Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  auto instance = runtime.submit_api("accel_app", [] {
    std::vector<cedr_cplx> in(256), out(256);
    in[1] = cedr_cplx(1.0f, 0.0f);
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(CEDR_FFT(in.data(), out.data(), 256).ok());
    }
    // Spectral magnitude of a shifted delta is flat 1.
    EXPECT_NEAR(std::abs(out[17]), 1.0f, 1e-4f);
  });
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(runtime.wait_all(30.0).ok());
  EXPECT_TRUE(runtime.shutdown().ok());
  EXPECT_GT(runtime.counters().get("tasks_on_fft0"), 0u);
}

}  // namespace
}  // namespace cedr::rt

namespace cedr::rt {
namespace {

TEST(RuntimeCounters, DisabledByConfiguration) {
  RuntimeConfig config;
  config.platform = platform::host(1);
  config.enable_counters = false;
  Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  auto instance = runtime.submit_api("quiet", [] {
    std::vector<cedr_cplx> buf(64);
    (void)CEDR_FFT(buf.data(), buf.data(), 64);
  });
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(runtime.wait_all(30.0).ok());
  EXPECT_TRUE(runtime.shutdown().ok());
  // Tracing still works; the PAPI-substitute counters stay silent.
  EXPECT_EQ(runtime.trace_log().tasks().size(), 1u);
  EXPECT_TRUE(runtime.counters().snapshot().empty());
}

}  // namespace
}  // namespace cedr::rt
