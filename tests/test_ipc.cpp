// Tests for the IPC daemon protocol (paper Fig. 1 submission flow).
// Uses the client/server pair in-process over a temp-dir Unix socket;
// shared-object submission via dlopen is covered by the integration test
// script (it needs a built module).
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "cedr/cedr.h"
#include "cedr/ipc/ipc.h"

namespace cedr::ipc {
namespace {

std::string temp_socket(const char* name) {
  return ::testing::TempDir() + "/cedr_" + name + ".sock";
}

rt::RuntimeConfig small_config() {
  rt::RuntimeConfig config;
  config.platform = platform::host(2);
  return config;
}

TEST(Ipc, StatusRoundTrip) {
  rt::Runtime runtime(small_config());
  ASSERT_TRUE(runtime.start().ok());
  IpcServer server(runtime, temp_socket("status"));
  ASSERT_TRUE(server.start().ok());

  IpcClient client(server.socket_path());
  auto status = client.status();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->first, 0u);
  EXPECT_EQ(status->second, 0u);

  server.stop();
  EXPECT_TRUE(runtime.shutdown().ok());
}

TEST(Ipc, SubmitRejectsMissingSharedObject) {
  rt::Runtime runtime(small_config());
  ASSERT_TRUE(runtime.start().ok());
  IpcServer server(runtime, temp_socket("badso"));
  ASSERT_TRUE(server.start().ok());

  IpcClient client(server.socket_path());
  EXPECT_FALSE(client.submit("/nonexistent/app.so").ok());

  server.stop();
  EXPECT_TRUE(runtime.shutdown().ok());
}

TEST(Ipc, StatsLineReportsRuntimeState) {
  rt::Runtime runtime(small_config());
  ASSERT_TRUE(runtime.start().ok());
  auto instance = runtime.submit_api("statsy", [] {
    std::vector<cedr_cplx> buf(64);
    for (int i = 0; i < 4; ++i) (void)CEDR_FFT(buf.data(), buf.data(), 64);
  });
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(runtime.wait_all(30.0).ok());

  IpcServer server(runtime, temp_socket("stats"));
  ASSERT_TRUE(server.start().ok());
  IpcClient client(server.socket_path());
  auto stats = client.stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("uptime_s="), std::string::npos);
  EXPECT_NE(stats->find("submitted=1"), std::string::npos);
  EXPECT_NE(stats->find("completed=1"), std::string::npos);
  EXPECT_NE(stats->find("inflight=0"), std::string::npos);
  EXPECT_NE(stats->find("pe_busy="), std::string::npos);

  server.stop();
  EXPECT_TRUE(runtime.shutdown().ok());
}

TEST(Ipc, MetricsReturnsLiveJsonDocument) {
  rt::RuntimeConfig config = small_config();
  config.obs.sampler_period_s = 0.005;  // exercise the sampler feed too
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  auto instance = runtime.submit_api("metricsy", [] {
    std::vector<cedr_cplx> buf(64);
    for (int i = 0; i < 6; ++i) (void)CEDR_FFT(buf.data(), buf.data(), 64);
  });
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(runtime.wait_all(30.0).ok());

  IpcServer server(runtime, temp_socket("metrics"));
  ASSERT_TRUE(server.start().ok());
  IpcClient client(server.socket_path());
  auto doc = client.metrics();
  ASSERT_TRUE(doc.ok());
  const json::Value* metrics = doc->find("metrics");
  ASSERT_NE(metrics, nullptr);
  const json::Value* hists = metrics->find("histograms");
  ASSERT_NE(hists, nullptr);
  const json::Value* service = hists->find("service_time_us");
  ASSERT_NE(service, nullptr);
  EXPECT_EQ(service->get_int("count", -1), 6);
  EXPECT_GT(service->get_double("p50", 0.0), 0.0);
  const json::Value* stats = doc->find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->get_int("completed", -1), 1);
  EXPECT_EQ(stats->get_int("tasks_executed", -1), 6);
  ASSERT_NE(doc->find("counters"), nullptr);

  server.stop();
  EXPECT_TRUE(runtime.shutdown().ok());
}

TEST(Ipc, WaitSucceedsOnIdleRuntime) {
  rt::Runtime runtime(small_config());
  ASSERT_TRUE(runtime.start().ok());
  IpcServer server(runtime, temp_socket("wait"));
  ASSERT_TRUE(server.start().ok());
  IpcClient client(server.socket_path());
  EXPECT_TRUE(client.wait_all().ok());
  server.stop();
  EXPECT_TRUE(runtime.shutdown().ok());
}

TEST(Ipc, ShutdownSerializesTraceAndUnblocksWaiter) {
  rt::Runtime runtime(small_config());
  ASSERT_TRUE(runtime.start().ok());
  // Generate some trace content through an API app.
  auto instance = runtime.submit_api("traced", [] {});
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(runtime.wait_all(30.0).ok());

  const std::string trace_path = ::testing::TempDir() + "/cedr_ipc_trace.json";
  IpcServer server(runtime, temp_socket("shutdown"), trace_path);
  ASSERT_TRUE(server.start().ok());

  IpcClient client(server.socket_path());
  EXPECT_TRUE(client.shutdown().ok());
  server.wait_for_shutdown();  // must not block after SHUTDOWN
  server.stop();
  EXPECT_TRUE(runtime.shutdown().ok());

  auto trace = json::parse_file(trace_path);
  ASSERT_TRUE(trace.ok());
  ASSERT_NE(trace->find("apps"), nullptr);
  EXPECT_EQ(trace->find("apps")->as_array().size(), 1u);
}

TEST(Ipc, SubmitSharedObjectEndToEnd) {
  // Full Fig. 1 flow: dlopen a compiled application module, run its
  // cedr_app_main as an API application, observe its kernels in the trace.
  const char* so_path = std::getenv("CEDR_IPC_APP");
  if (so_path == nullptr || so_path[0] == '\0') {
    GTEST_SKIP() << "CEDR_IPC_APP not set (examples not built)";
  }
  rt::Runtime runtime(small_config());
  ASSERT_TRUE(runtime.start().ok());
  IpcServer server(runtime, temp_socket("submit_e2e"));
  ASSERT_TRUE(server.start().ok());

  IpcClient client(server.socket_path());
  auto instance = client.submit(so_path, "ipc_pd");
  ASSERT_TRUE(instance.ok()) << instance.status().to_string();
  EXPECT_GE(*instance, 1u);
  ASSERT_TRUE(client.wait_all().ok());
  auto status = client.status();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->first, 1u);
  EXPECT_EQ(status->second, 1u);

  server.stop();
  EXPECT_TRUE(runtime.shutdown().ok());
  // The dlopen'ed app's CEDR calls were scheduled by *this* runtime.
  EXPECT_GT(runtime.trace_log().tasks().size(), 100u);
  const auto apps = runtime.trace_log().apps();
  ASSERT_EQ(apps.size(), 1u);
  EXPECT_EQ(apps[0].app_name, "ipc_pd");
}

TEST(Ipc, ClientFailsCleanlyWithoutServer) {
  IpcClient client(temp_socket("nobody_listening"));
  EXPECT_EQ(client.status().status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(client.wait_all().code(), StatusCode::kUnavailable);
}

TEST(Ipc, ServerRejectsUnknownCommandGracefully) {
  // Unknown verbs come back as ERR; exercised through a raw submit of a
  // command the client API cannot produce — here we just confirm a second
  // server on the same socket path recovers (stale socket handling).
  rt::Runtime runtime(small_config());
  ASSERT_TRUE(runtime.start().ok());
  const std::string path = temp_socket("reuse");
  {
    IpcServer first(runtime, path);
    ASSERT_TRUE(first.start().ok());
    first.stop();
  }
  IpcServer second(runtime, path);
  EXPECT_TRUE(second.start().ok());  // rebinds over the stale path
  IpcClient client(path);
  EXPECT_TRUE(client.status().ok());
  second.stop();
  EXPECT_TRUE(runtime.shutdown().ok());
}

TEST(Ipc, RejectsOverlongSocketPath) {
  rt::Runtime runtime(small_config());
  ASSERT_TRUE(runtime.start().ok());
  IpcServer server(runtime, std::string(200, 'x'));
  EXPECT_EQ(server.start().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(runtime.shutdown().ok());
}

}  // namespace
}  // namespace cedr::ipc
