// Tests for the scheduling heuristics: assignment validity, policy
// behavior on crafted scenarios, complexity accounting, HEFT ranks, the
// sharded ready queue, and per-class (schedule_shard) candidate views.
#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "cedr/common/rng.h"

#include "cedr/sched/heuristics.h"
#include "cedr/sched/rank.h"
#include "cedr/sched/ready_queue.h"
#include "cedr/sched/scheduler.h"

namespace cedr::sched {
namespace {

platform::PlatformConfig test_platform() { return platform::zcu102(3, 1, 1); }

std::vector<PeState> pe_states(const platform::PlatformConfig& platform) {
  std::vector<PeState> pes;
  for (std::size_t i = 0; i < platform.pes.size(); ++i) {
    pes.push_back(PeState{.pe_index = i, .cls = platform.pes[i].cls});
  }
  return pes;
}

ReadyTask fft_task(std::uint64_t key, std::size_t size = 256) {
  return ReadyTask{.task_key = key,
                   .kernel = platform::KernelId::kFft,
                   .problem_size = size,
                   .data_bytes = 2 * size * 8};
}

ReadyTask generic_task(std::uint64_t key, std::size_t work) {
  return ReadyTask{.task_key = key,
                   .kernel = platform::KernelId::kGeneric,
                   .problem_size = work};
}

/// Shared validity property: every assignable task assigned exactly once,
/// each to a PE whose class supports its kernel and passes the class mask.
void check_validity(const std::vector<ReadyTask>& ready,
                    const platform::PlatformConfig& platform,
                    const ScheduleResult& result) {
  std::vector<int> seen(ready.size(), 0);
  for (const Assignment& a : result.assignments) {
    ASSERT_LT(a.queue_index, ready.size());
    ASSERT_LT(a.pe_index, platform.pes.size());
    ++seen[a.queue_index];
    const ReadyTask& t = ready[a.queue_index];
    EXPECT_TRUE(platform::pe_class_supports(platform.pes[a.pe_index].cls,
                                            t.kernel));
    EXPECT_TRUE(t.allowed_on(platform.pes[a.pe_index].cls));
  }
  for (const int count : seen) EXPECT_LE(count, 1);
}

class AllSchedulers : public ::testing::TestWithParam<std::string> {};

TEST_P(AllSchedulers, FactoryAndName) {
  auto scheduler = make_scheduler(GetParam());
  ASSERT_TRUE(scheduler.ok());
  EXPECT_EQ((*scheduler)->name(), GetParam());
}

TEST_P(AllSchedulers, AssignsEveryAssignableTask) {
  auto scheduler = make_scheduler(GetParam());
  ASSERT_TRUE(scheduler.ok());
  const auto platform = test_platform();
  std::vector<ReadyTask> ready;
  for (std::uint64_t i = 0; i < 40; ++i) ready.push_back(fft_task(i));
  for (std::uint64_t i = 40; i < 50; ++i) ready.push_back(generic_task(i, 1000));
  auto pes = pe_states(platform);
  const ScheduleContext ctx{.now = 0.0, .costs = &platform.costs};
  const ScheduleResult result = (*scheduler)->schedule(ready, pes, ctx);
  EXPECT_EQ(result.assignments.size(), ready.size());
  check_validity(ready, platform, result);
  EXPECT_GT(result.comparisons, 0u);
}

TEST_P(AllSchedulers, EmptyQueueProducesNothing) {
  auto scheduler = make_scheduler(GetParam());
  ASSERT_TRUE(scheduler.ok());
  const auto platform = test_platform();
  auto pes = pe_states(platform);
  const ScheduleContext ctx{.now = 0.0, .costs = &platform.costs};
  const ScheduleResult result = (*scheduler)->schedule({}, pes, ctx);
  EXPECT_TRUE(result.assignments.empty());
}

TEST_P(AllSchedulers, RespectsClassMask) {
  auto scheduler = make_scheduler(GetParam());
  ASSERT_TRUE(scheduler.ok());
  const auto platform = test_platform();
  // FFT tasks restricted to CPU only (e.g. >2048-point transforms).
  std::vector<ReadyTask> ready;
  for (std::uint64_t i = 0; i < 12; ++i) {
    ReadyTask t = fft_task(i, 4096);
    t.class_mask = 1u << static_cast<unsigned>(platform::PeClass::kCpu);
    ready.push_back(t);
  }
  auto pes = pe_states(platform);
  const ScheduleContext ctx{.now = 0.0, .costs = &platform.costs};
  const ScheduleResult result = (*scheduler)->schedule(ready, pes, ctx);
  EXPECT_EQ(result.assignments.size(), ready.size());
  for (const Assignment& a : result.assignments) {
    EXPECT_EQ(platform.pes[a.pe_index].cls, platform::PeClass::kCpu);
  }
}

std::vector<std::string> all_scheduler_names() {
  std::vector<std::string> names;
  for (const std::string_view name : scheduler_names()) {
    names.emplace_back(name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(Names, AllSchedulers,
                         ::testing::ValuesIn(all_scheduler_names()),
                         [](const auto& info) { return info.param; });

TEST(SchedulerFactory, RejectsUnknownName) {
  const auto result = make_scheduler("FIFO");
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  // The error must name the offender so a config typo is diagnosable.
  EXPECT_NE(result.status().to_string().find("FIFO"), std::string::npos);
  EXPECT_EQ(scheduler_names().size(), 8u);
}

// ---------------------------------------------------------------------------
// Per-class candidate views (schedule_shard)
// ---------------------------------------------------------------------------

class ShardViews : public ::testing::TestWithParam<std::string> {};

TEST_P(ShardViews, RestrictedViewOnlyUsesAdmittedClasses) {
  auto scheduler = make_scheduler(GetParam());
  ASSERT_TRUE(scheduler.ok());
  const auto platform = test_platform();  // 3 CPU + 1 FFT + 1 MMULT
  std::vector<ReadyTask> ready;
  for (std::uint64_t i = 0; i < 8; ++i) ready.push_back(fft_task(i));
  for (std::uint64_t i = 8; i < 12; ++i) ready.push_back(generic_task(i, 500));
  auto pes = pe_states(platform);
  const ScheduleContext ctx{.now = 0.0, .costs = &platform.costs};
  const std::uint32_t fft_only =
      1u << static_cast<unsigned>(platform::PeClass::kFftAccel);
  const ScheduleResult result =
      (*scheduler)->schedule_shard(ready, pes, ctx, fft_only);
  EXPECT_FALSE(result.assignments.empty());
  for (const Assignment& a : result.assignments) {
    // Only FFT-accelerator PEs may appear, and only FFT tasks may land
    // there (the generic tasks are not eligible on the admitted class).
    EXPECT_EQ(platform.pes[a.pe_index].cls, platform::PeClass::kFftAccel);
    EXPECT_EQ(ready[a.queue_index].kernel, platform::KernelId::kFft);
  }
}

TEST_P(ShardViews, RestrictedViewHonorsTaskClassMask) {
  auto scheduler = make_scheduler(GetParam());
  ASSERT_TRUE(scheduler.ok());
  const auto platform = test_platform();
  // FFT tasks whose effective mask excludes the accelerator (>2048 points):
  // a view admitting only the FFT class must assign none of them.
  std::vector<ReadyTask> ready;
  for (std::uint64_t i = 0; i < 6; ++i) {
    ReadyTask t = fft_task(i, 4096);
    t.class_mask = 1u << static_cast<unsigned>(platform::PeClass::kCpu);
    ready.push_back(t);
  }
  auto pes = pe_states(platform);
  const ScheduleContext ctx{.now = 0.0, .costs = &platform.costs};
  const std::uint32_t fft_only =
      1u << static_cast<unsigned>(platform::PeClass::kFftAccel);
  const ScheduleResult result =
      (*scheduler)->schedule_shard(ready, pes, ctx, fft_only);
  EXPECT_TRUE(result.assignments.empty());
}

TEST_P(ShardViews, QuarantinedPesGetNothingOnRestrictedViews) {
  auto scheduler = make_scheduler(GetParam());
  ASSERT_TRUE(scheduler.ok());
  const auto platform = test_platform();
  std::vector<ReadyTask> ready;
  for (std::uint64_t i = 0; i < 10; ++i) ready.push_back(fft_task(i));
  auto pes = pe_states(platform);
  for (PeState& pe : pes) {
    if (platform.pes[pe.pe_index].cls == platform::PeClass::kCpu) {
      pe.quarantined = true;
    }
  }
  const ScheduleContext ctx{.now = 0.0, .costs = &platform.costs};
  const std::uint32_t cpu_only =
      1u << static_cast<unsigned>(platform::PeClass::kCpu);
  const ScheduleResult result =
      (*scheduler)->schedule_shard(ready, pes, ctx, cpu_only);
  EXPECT_TRUE(result.assignments.empty());
}

INSTANTIATE_TEST_SUITE_P(Names, ShardViews,
                         ::testing::ValuesIn(all_scheduler_names()),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Comparison accounting (Fig. 7's input)
// ---------------------------------------------------------------------------

TEST(Comparisons, EftCountsPePoolPerTask) {
  // EFT's legacy accounting: P evaluations per queued task, assignable or
  // not — the formula fig10's baseline comparison relies on.
  EftScheduler eft;
  const auto platform = test_platform();
  std::vector<ReadyTask> ready;
  for (std::uint64_t i = 0; i < 17; ++i) ready.push_back(fft_task(i));
  auto pes = pe_states(platform);
  const ScheduleContext ctx{.now = 0.0, .costs = &platform.costs};
  const ScheduleResult result = eft.schedule(ready, pes, ctx);
  EXPECT_EQ(result.comparisons, 17u * platform.pes.size());
}

TEST(Comparisons, RoundRobinCountsCursorProbes) {
  RoundRobinScheduler rr;
  // Homogeneous all-CPU platform: every probe hits an eligible PE on the
  // first try, so the cursor arithmetic yields exactly one probe per task.
  platform::PlatformConfig plat = platform::zcu102(3, 0, 0);
  std::vector<ReadyTask> ready;
  for (std::uint64_t i = 0; i < 9; ++i) ready.push_back(fft_task(i));
  auto pes = pe_states(plat);
  const ScheduleContext ctx{.now = 0.0, .costs = &plat.costs};
  const ScheduleResult result = rr.schedule(ready, pes, ctx);
  EXPECT_EQ(result.assignments.size(), 9u);
  EXPECT_EQ(result.comparisons, 9u);
}

TEST(Comparisons, RoundRobinChargesFullRotationForUnassignable) {
  RoundRobinScheduler rr;
  platform::PlatformConfig plat = platform::zcu102(3, 0, 0);
  std::vector<ReadyTask> ready{fft_task(0)};
  ready[0].class_mask = 0;  // eligible nowhere
  auto pes = pe_states(plat);
  const ScheduleContext ctx{.now = 0.0, .costs = &plat.costs};
  const ScheduleResult result = rr.schedule(ready, pes, ctx);
  EXPECT_TRUE(result.assignments.empty());
  // The legacy scan probed every PE before giving up on the task.
  EXPECT_EQ(result.comparisons, plat.pes.size());
}

// ---------------------------------------------------------------------------
// Sharded ready queue
// ---------------------------------------------------------------------------

ReadyTask masked_task(std::uint64_t key, std::uint32_t mask) {
  ReadyTask t = fft_task(key);
  t.class_mask = mask;
  return t;
}

TEST(ReadyQueueShardsTest, RoutesSingleClassMasksToTheirShard) {
  for (std::size_t c = 0; c < platform::kNumPeClasses; ++c) {
    EXPECT_EQ(ReadyQueueShards::shard_for(1u << c), c);
  }
  const std::uint32_t cpu_and_fft =
      (1u << static_cast<unsigned>(platform::PeClass::kCpu)) |
      (1u << static_cast<unsigned>(platform::PeClass::kFftAccel));
  EXPECT_EQ(ReadyQueueShards::shard_for(cpu_and_fft),
            ReadyQueueShards::kMultiShard);
  EXPECT_EQ(ReadyQueueShards::shard_for(0xffffffffu),
            ReadyQueueShards::kMultiShard);
  EXPECT_EQ(ReadyQueueShards::shard_for(0u), ReadyQueueShards::kMultiShard);
}

TEST(ReadyQueueShardsTest, SnapshotMergesInGlobalFifoOrder) {
  ReadyQueueShards queue;
  // Interleave pushes across three shards; the snapshot must present the
  // global push order, exactly as the legacy single deque did.
  const std::uint32_t cpu =
      1u << static_cast<unsigned>(platform::PeClass::kCpu);
  const std::uint32_t fft =
      1u << static_cast<unsigned>(platform::PeClass::kFftAccel);
  const std::uint32_t masks[] = {cpu, fft, 0xffffffffu, fft, cpu, 0xffffffffu};
  for (std::uint64_t i = 0; i < 6; ++i) {
    queue.push(masked_task(i, masks[i]), std::make_shared<std::uint64_t>(i));
  }
  EXPECT_EQ(queue.size(), 6u);
  const ReadyQueueShards::Snapshot snap = queue.snapshot();
  ASSERT_EQ(snap.size(), 6u);
  for (std::uint64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(snap.views[i].task_key, i);
    EXPECT_EQ(snap.entries[i].view.task_key, i);
    EXPECT_EQ(*std::static_pointer_cast<std::uint64_t>(snap.entries[i].payload),
              i);
  }
}

TEST(ReadyQueueShardsTest, RemoveTakesOnlySnapshottedEntries) {
  ReadyQueueShards queue;
  const std::uint32_t cpu =
      1u << static_cast<unsigned>(platform::PeClass::kCpu);
  for (std::uint64_t i = 0; i < 4; ++i) {
    queue.push(masked_task(i, i % 2 == 0 ? cpu : 0xffffffffu),
               std::make_shared<std::uint64_t>(i));
  }
  const ReadyQueueShards::Snapshot snap = queue.snapshot();
  // Entries pushed after the snapshot must survive removal untouched.
  queue.push(masked_task(4, cpu), std::make_shared<std::uint64_t>(4));
  queue.push(masked_task(5, 0xffffffffu), std::make_shared<std::uint64_t>(5));
  queue.remove(snap.entries);
  EXPECT_EQ(queue.size(), 2u);
  const ReadyQueueShards::Snapshot rest = queue.snapshot();
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest.views[0].task_key, 4u);
  EXPECT_EQ(rest.views[1].task_key, 5u);
}

TEST(ReadyQueueShardsTest, PartialRemovalKeepsFifoOrder) {
  ReadyQueueShards queue;
  for (std::uint64_t i = 0; i < 6; ++i) {
    queue.push(masked_task(i, 0xffffffffu),
               std::make_shared<std::uint64_t>(i));
  }
  const ReadyQueueShards::Snapshot snap = queue.snapshot();
  // Dispatch a non-contiguous subset, as a round with a busy PE pool would.
  const ReadyQueueShards::Entry taken[] = {snap.entries[1], snap.entries[4]};
  queue.remove(taken);
  const ReadyQueueShards::Snapshot rest = queue.snapshot();
  ASSERT_EQ(rest.size(), 4u);
  EXPECT_EQ(rest.views[0].task_key, 0u);
  EXPECT_EQ(rest.views[1].task_key, 2u);
  EXPECT_EQ(rest.views[2].task_key, 3u);
  EXPECT_EQ(rest.views[3].task_key, 5u);
}

TEST(ReadyQueueShardsTest, DepthsTrackPerShardOccupancy) {
  ReadyQueueShards queue;
  const auto cpu_shard = static_cast<std::size_t>(platform::PeClass::kCpu);
  const auto fft_shard =
      static_cast<std::size_t>(platform::PeClass::kFftAccel);
  queue.push(masked_task(0, 1u << cpu_shard), std::make_shared<int>(0));
  queue.push(masked_task(1, 1u << cpu_shard), std::make_shared<int>(1));
  queue.push(masked_task(2, 1u << fft_shard), std::make_shared<int>(2));
  queue.push(masked_task(3, 0xffffffffu), std::make_shared<int>(3));
  const auto depths = queue.depths();
  EXPECT_EQ(depths[cpu_shard], 2u);
  EXPECT_EQ(depths[fft_shard], 1u);
  EXPECT_EQ(depths[ReadyQueueShards::kMultiShard], 1u);
  EXPECT_EQ(queue.size(), 4u);
  EXPECT_EQ(ReadyQueueShards::shard_name(cpu_shard), "cpu");
  EXPECT_EQ(ReadyQueueShards::shard_name(ReadyQueueShards::kMultiShard),
            "multi");
}

TEST(ReadyQueueShardsTest, SnapshotViewsCarryTheEffectiveMask) {
  // The heuristics read eligibility straight off the snapshot views; the
  // queue must hand back exactly the mask it was given at push time.
  ReadyQueueShards queue;
  const std::uint32_t cpu =
      1u << static_cast<unsigned>(platform::PeClass::kCpu);
  queue.push(masked_task(7, cpu), std::make_shared<int>(0));
  const ReadyQueueShards::Snapshot snap = queue.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap.views[0].class_mask, cpu);
  EXPECT_EQ(snap.entries[0].shard,
            static_cast<std::uint8_t>(platform::PeClass::kCpu));
}

TEST(RoundRobin, SpreadsAcrossCompatiblePes) {
  RoundRobinScheduler rr;
  const auto platform = test_platform();  // 3 CPU + 1 FFT + 1 MMULT
  std::vector<ReadyTask> ready;
  for (std::uint64_t i = 0; i < 40; ++i) ready.push_back(fft_task(i));
  auto pes = pe_states(platform);
  const ScheduleContext ctx{.now = 0.0, .costs = &platform.costs};
  const ScheduleResult result = rr.schedule(ready, pes, ctx);
  std::vector<int> per_pe(platform.pes.size(), 0);
  for (const Assignment& a : result.assignments) ++per_pe[a.pe_index];
  // 4 compatible PEs (MMULT can't run FFT): 40 tasks -> 10 each.
  EXPECT_EQ(per_pe[0], 10);
  EXPECT_EQ(per_pe[1], 10);
  EXPECT_EQ(per_pe[2], 10);
  EXPECT_EQ(per_pe[3], 10);
  EXPECT_EQ(per_pe[4], 0);
}

TEST(Eft, PicksEarliestFinishingPe) {
  EftScheduler eft;
  platform::PlatformConfig plat = platform::zcu102(2, 0, 0);
  auto pes = pe_states(plat);
  pes[0].available_time = 10.0;  // cpu0 busy far into the future
  pes[1].available_time = 0.0;
  std::vector<ReadyTask> ready{fft_task(0)};
  const ScheduleContext ctx{.now = 0.0, .costs = &plat.costs};
  const ScheduleResult result = eft.schedule(ready, pes, ctx);
  ASSERT_EQ(result.assignments.size(), 1u);
  EXPECT_EQ(result.assignments[0].pe_index, 1u);
}

TEST(Eft, BalancesLoadViaAvailability) {
  EftScheduler eft;
  platform::PlatformConfig plat = platform::zcu102(3, 0, 0);
  auto pes = pe_states(plat);
  std::vector<ReadyTask> ready;
  for (std::uint64_t i = 0; i < 9; ++i) ready.push_back(fft_task(i));
  const ScheduleContext ctx{.now = 0.0, .costs = &plat.costs};
  const ScheduleResult result = eft.schedule(ready, pes, ctx);
  std::vector<int> per_pe(plat.pes.size(), 0);
  for (const Assignment& a : result.assignments) ++per_pe[a.pe_index];
  // Identical tasks on identical CPUs must spread evenly.
  EXPECT_EQ(per_pe[0], 3);
  EXPECT_EQ(per_pe[1], 3);
  EXPECT_EQ(per_pe[2], 3);
}

TEST(Etf, MatchesNaiveReferenceImplementation) {
  // The lazy-heap ETF must produce the same assignments as the textbook
  // O(Q^2 P) formulation it models.
  const auto platform = test_platform();
  std::vector<ReadyTask> ready;
  Rng rng(11);
  for (std::uint64_t i = 0; i < 30; ++i) {
    ReadyTask t = fft_task(i, 64u << rng.next_below(4));
    ready.push_back(t);
  }
  EtfScheduler etf;
  auto pes_fast = pe_states(platform);
  const ScheduleContext ctx{.now = 0.0, .costs = &platform.costs};
  const ScheduleResult fast = etf.schedule(ready, pes_fast, ctx);

  // Naive reference.
  auto pes_ref = pe_states(platform);
  std::vector<std::uint8_t> taken(ready.size(), 0);
  std::vector<Assignment> ref;
  for (std::size_t step = 0; step < ready.size(); ++step) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_q = 0;
    PeState* best_pe = nullptr;
    for (std::size_t q = 0; q < ready.size(); ++q) {
      if (taken[q]) continue;
      for (PeState& pe : pes_ref) {
        const double finish = finish_time_on(ready[q], pe, ctx);
        if (finish < best) {
          best = finish;
          best_q = q;
          best_pe = &pe;
        }
      }
    }
    if (best_pe == nullptr) break;
    taken[best_q] = 1;
    best_pe->available_time = best;
    ref.push_back({best_q, best_pe->pe_index});
  }

  ASSERT_EQ(fast.assignments.size(), ref.size());
  // Finish-time profiles must match exactly (assignment order may permute
  // between equal-cost ties, so compare the resulting PE availability).
  for (std::size_t i = 0; i < pes_fast.size(); ++i) {
    EXPECT_NEAR(pes_fast[i].available_time, pes_ref[i].available_time, 1e-12);
  }
}

TEST(Etf, ReportsQuadraticComparisons) {
  EtfScheduler etf;
  const auto platform = test_platform();
  const ScheduleContext ctx{.now = 0.0, .costs = &platform.costs};
  std::vector<ReadyTask> small, large;
  for (std::uint64_t i = 0; i < 10; ++i) small.push_back(fft_task(i));
  for (std::uint64_t i = 0; i < 100; ++i) large.push_back(fft_task(i));
  auto pes1 = pe_states(platform);
  auto pes2 = pe_states(platform);
  const auto c_small = etf.schedule(small, pes1, ctx).comparisons;
  const auto c_large = etf.schedule(large, pes2, ctx).comparisons;
  // 10x the queue -> ~100x the modeled comparisons (Fig. 7's mechanism).
  EXPECT_NEAR(static_cast<double>(c_large) / static_cast<double>(c_small),
              100.0, 15.0);
  EXPECT_EQ(c_small, 5u * 10u * 11u / 2u);
}

TEST(HeftRt, SchedulesHighRankFirst) {
  HeftRtScheduler heft;
  platform::PlatformConfig plat = platform::zcu102(1, 0, 0);  // single CPU
  auto pes = pe_states(plat);
  std::vector<ReadyTask> ready;
  ReadyTask low = fft_task(0);
  low.rank = 1.0;
  ReadyTask high = fft_task(1);
  high.rank = 10.0;
  ready.push_back(low);
  ready.push_back(high);
  const ScheduleContext ctx{.now = 0.0, .costs = &plat.costs};
  const ScheduleResult result = heft.schedule(ready, pes, ctx);
  ASSERT_EQ(result.assignments.size(), 2u);
  // Higher-rank task (queue index 1) must be placed first.
  EXPECT_EQ(result.assignments[0].queue_index, 1u);
  EXPECT_EQ(result.assignments[1].queue_index, 0u);
}

TEST(UpwardRank, MonotoneAlongPaths) {
  // Chain 0 -> 1 -> 2: rank must strictly decrease toward the exit.
  task::TaskGraph g;
  for (task::TaskId id = 0; id < 3; ++id) {
    task::Task t;
    t.id = id;
    t.kernel = platform::KernelId::kFft;
    t.problem_size = 256;
    t.data_bytes = 4096;
    ASSERT_TRUE(g.add_task(std::move(t)).ok());
  }
  ASSERT_TRUE(g.add_edge(0, 1).ok());
  ASSERT_TRUE(g.add_edge(1, 2).ok());
  const auto platform = test_platform();
  const auto ranks = upward_ranks(g, platform);
  ASSERT_EQ(ranks.size(), 3u);
  EXPECT_GT(ranks.at(0), ranks.at(1));
  EXPECT_GT(ranks.at(1), ranks.at(2));
  EXPECT_GT(ranks.at(2), 0.0);
  // Exit-node rank equals its own average execution.
  task::Task probe;
  probe.kernel = platform::KernelId::kFft;
  probe.problem_size = 256;
  probe.data_bytes = 4096;
  EXPECT_NEAR(ranks.at(2), average_execution(probe, platform), 1e-12);
}

TEST(UpwardRank, BranchTakesMaxSuccessor) {
  // 0 -> {1 (cheap), 2 (expensive)}: rank(0) = exec(0) + rank(2).
  task::TaskGraph g;
  auto add = [&](task::TaskId id, std::size_t size) {
    task::Task t;
    t.id = id;
    t.kernel = platform::KernelId::kFft;
    t.problem_size = size;
    ASSERT_TRUE(g.add_task(std::move(t)).ok());
  };
  add(0, 256);
  add(1, 64);
  add(2, 2048);
  ASSERT_TRUE(g.add_edge(0, 1).ok());
  ASSERT_TRUE(g.add_edge(0, 2).ok());
  const auto platform = test_platform();
  const auto ranks = upward_ranks(g, platform);
  task::Task probe;
  probe.kernel = platform::KernelId::kFft;
  probe.problem_size = 256;
  EXPECT_NEAR(ranks.at(0), average_execution(probe, platform) + ranks.at(2),
              1e-12);
}

}  // namespace
}  // namespace cedr::sched
