// Tests for executable JSON DAGs (buffer binding + standard-module impls)
// and for profiling-driven cost tables.
#include <gtest/gtest.h>

#include "cedr/apps/executable_dag.h"
#include "cedr/cedr.h"
#include "cedr/kernels/fft.h"
#include "cedr/platform/profiling.h"
#include "cedr/ipc/ipc.h"
#include "cedr/runtime/runtime.h"

namespace cedr {
namespace {

constexpr const char* kFilterDag = R"({
  "app_name": "fd_filter",
  "buffers": {
    "signal":   {"elems": 256, "kind": "cfloat"},
    "mask":     {"elems": 256, "kind": "cfloat"},
    "filtered": {"elems": 256, "kind": "cfloat"}
  },
  "tasks": [
    {"id": 0, "name": "fwd", "kernel": "FFT",
     "args": {"in": "signal", "out": "signal"}, "predecessors": []},
    {"id": 1, "name": "apply", "kernel": "ZIP",
     "args": {"a": "signal", "b": "mask", "out": "filtered", "op": 0},
     "predecessors": [0]},
    {"id": 2, "name": "back", "kernel": "IFFT",
     "args": {"in": "filtered", "out": "filtered"}, "predecessors": [1]},
    {"id": 3, "name": "post", "kernel": "GENERIC",
     "args": {"work_ns": 5000}, "predecessors": [2]}
  ]
})";

TEST(BufferPool, NamedTypedBuffers) {
  apps::BufferPool pool;
  ASSERT_TRUE(pool.add_cfloat("a", 16).ok());
  ASSERT_TRUE(pool.add_float("b", 8).ok());
  EXPECT_EQ(pool.size(), 2u);
  ASSERT_NE(pool.cfloat_buffer("a"), nullptr);
  EXPECT_EQ(pool.cfloat_buffer("a")->size(), 16u);
  EXPECT_EQ(pool.cfloat_buffer("b"), nullptr);  // wrong kind
  EXPECT_NE(pool.float_buffer("b"), nullptr);
  EXPECT_EQ(pool.float_buffer("missing"), nullptr);
  EXPECT_EQ(pool.add_cfloat("a", 4).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(pool.add_float("a", 4).code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(pool.add_cfloat("", 4).ok());
  EXPECT_FALSE(pool.add_cfloat("zero", 0).ok());
}

TEST(ExecutableDag, InstantiatesAndRunsEndToEnd) {
  auto doc = json::parse(kFilterDag);
  ASSERT_TRUE(doc.ok());
  auto dag = apps::instantiate_dag(*doc);
  ASSERT_TRUE(dag.ok()) << dag.status().to_string();
  EXPECT_EQ(dag->descriptor->graph.size(), 4u);
  EXPECT_EQ(dag->buffers->size(), 3u);

  // Seed: an impulse; mask = all-pass. Filtered output must equal input.
  auto* signal = dag->buffers->cfloat_buffer("signal");
  auto* mask = dag->buffers->cfloat_buffer("mask");
  ASSERT_NE(signal, nullptr);
  (*signal)[3] = cedr_cplx(1.0f, 0.0f);
  const std::vector<cfloat> original = *signal;
  for (auto& v : *mask) v = cedr_cplx(1.0f, 0.0f);

  rt::RuntimeConfig config;
  config.platform = platform::host(2, 1);
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  ASSERT_TRUE(runtime.submit_dag(dag->descriptor).ok());
  ASSERT_TRUE(runtime.wait_all(30.0).ok());
  EXPECT_TRUE(runtime.shutdown().ok());
  EXPECT_EQ(runtime.trace_log().tasks().size(), 4u);

  const auto* filtered = dag->buffers->cfloat_buffer("filtered");
  ASSERT_NE(filtered, nullptr);
  EXPECT_LT(max_abs_diff(*filtered, original), 1e-4f);
}

TEST(ExecutableDag, BuffersOutliveTheReturnedStruct) {
  // Only the descriptor is retained (as submit_dag would); task impls must
  // keep the pool alive through their captured shared_ptr.
  std::shared_ptr<const task::AppDescriptor> descriptor;
  {
    auto doc = json::parse(kFilterDag);
    auto dag = apps::instantiate_dag(*doc);
    ASSERT_TRUE(dag.ok());
    auto* signal = dag->buffers->cfloat_buffer("signal");
    (*signal)[0] = cedr_cplx(2.0f, 0.0f);
    auto* mask = dag->buffers->cfloat_buffer("mask");
    for (auto& v : *mask) v = cedr_cplx(1.0f, 0.0f);
    descriptor = dag->descriptor;
  }  // ExecutableDag (and its pool handle) destroyed here
  rt::RuntimeConfig config;
  config.platform = platform::host(1);
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  ASSERT_TRUE(runtime.submit_dag(descriptor).ok());
  EXPECT_TRUE(runtime.wait_all(30.0).ok());
  EXPECT_TRUE(runtime.shutdown().ok());
}

struct BadDagCase {
  const char* name;
  const char* text;
};

class ExecutableDagErrors : public ::testing::TestWithParam<BadDagCase> {};

TEST_P(ExecutableDagErrors, Rejected) {
  auto doc = json::parse(GetParam().text);
  ASSERT_TRUE(doc.ok()) << "fixture must be valid JSON";
  EXPECT_FALSE(apps::instantiate_dag(*doc).ok()) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, ExecutableDagErrors,
    ::testing::Values(
        BadDagCase{"missing_buffer",
                   R"({"app_name":"x","tasks":[{"id":0,"kernel":"FFT",
                       "args":{"in":"nope","out":"nope"}}]})"},
        BadDagCase{"missing_arg",
                   R"({"app_name":"x",
                       "buffers":{"a":{"elems":64,"kind":"cfloat"}},
                       "tasks":[{"id":0,"kernel":"FFT","args":{"in":"a"}}]})"},
        BadDagCase{"non_pow2_fft",
                   R"({"app_name":"x",
                       "buffers":{"a":{"elems":100,"kind":"cfloat"}},
                       "tasks":[{"id":0,"kernel":"FFT",
                                 "args":{"in":"a","out":"a"}}]})"},
        BadDagCase{"zip_size_mismatch",
                   R"({"app_name":"x",
                       "buffers":{"a":{"elems":64,"kind":"cfloat"},
                                  "b":{"elems":32,"kind":"cfloat"}},
                       "tasks":[{"id":0,"kernel":"ZIP",
                                 "args":{"a":"a","b":"b","out":"a"}}]})"},
        BadDagCase{"zip_bad_op",
                   R"({"app_name":"x",
                       "buffers":{"a":{"elems":64,"kind":"cfloat"}},
                       "tasks":[{"id":0,"kernel":"ZIP",
                                 "args":{"a":"a","b":"a","out":"a",
                                         "op":9}}]})"},
        BadDagCase{"mmult_missing_dims",
                   R"({"app_name":"x",
                       "buffers":{"m":{"elems":4,"kind":"float"}},
                       "tasks":[{"id":0,"kernel":"MMULT",
                                 "args":{"a":"m","b":"m","c":"m"}}]})"},
        BadDagCase{"wrong_buffer_kind",
                   R"({"app_name":"x",
                       "buffers":{"a":{"elems":64,"kind":"float"}},
                       "tasks":[{"id":0,"kernel":"FFT",
                                 "args":{"in":"a","out":"a"}}]})"},
        BadDagCase{"unknown_kind",
                   R"({"app_name":"x",
                       "buffers":{"a":{"elems":64,"kind":"double"}},
                       "tasks":[]})"}),
    [](const auto& info) { return info.param.name; });

TEST(ExecutableDag, MmultBindingComputesProduct) {
  constexpr const char* kDag = R"({
    "app_name": "gemm",
    "buffers": {
      "a": {"elems": 4, "kind": "float"},
      "b": {"elems": 4, "kind": "float"},
      "c": {"elems": 4, "kind": "float"}
    },
    "tasks": [
      {"id": 0, "kernel": "MMULT",
       "args": {"a": "a", "b": "b", "c": "c", "m": 2, "k": 2, "n": 2}}
    ]
  })";
  auto doc = json::parse(kDag);
  auto dag = apps::instantiate_dag(*doc);
  ASSERT_TRUE(dag.ok());
  *dag->buffers->float_buffer("a") = {1, 2, 3, 4};
  *dag->buffers->float_buffer("b") = {5, 6, 7, 8};
  rt::RuntimeConfig config;
  config.platform = platform::host(1, 0, 1);
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  ASSERT_TRUE(runtime.submit_dag(dag->descriptor).ok());
  ASSERT_TRUE(runtime.wait_all(30.0).ok());
  EXPECT_TRUE(runtime.shutdown().ok());
  const auto& c = *dag->buffers->float_buffer("c");
  EXPECT_FLOAT_EQ(c[0], 19);
  EXPECT_FLOAT_EQ(c[1], 22);
  EXPECT_FLOAT_EQ(c[2], 43);
  EXPECT_FLOAT_EQ(c[3], 50);
}

TEST(ExecutableDag, LoadsFromDiskAndSubmitsOverIpc) {
  const std::string path = ::testing::TempDir() + "/cedr_exec_dag.json";
  {
    auto doc = json::parse(kFilterDag);
    ASSERT_TRUE(json::write_file(path, *doc).ok());
  }
  rt::RuntimeConfig config;
  config.platform = platform::host(2, 1);
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  ipc::IpcServer server(runtime, ::testing::TempDir() + "/cedr_dag.sock");
  ASSERT_TRUE(server.start().ok());
  ipc::IpcClient client(server.socket_path());
  auto instance = client.submit_dag(path);
  ASSERT_TRUE(instance.ok()) << instance.status().to_string();
  ASSERT_TRUE(client.wait_all().ok());
  server.stop();
  EXPECT_TRUE(runtime.shutdown().ok());
  EXPECT_EQ(runtime.trace_log().tasks().size(), 4u);
  EXPECT_FALSE(client.submit_dag("/nonexistent.json").ok());
}

// ---- Profiling-driven cost tables -------------------------------------------

TEST(Profiling, FitsTablesFromRuntimeTrace) {
  rt::RuntimeConfig config;
  config.platform = platform::host(2);
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  auto instance = runtime.submit_api("calibration", [] {
    for (int round = 0; round < 5; ++round) {
      for (const std::size_t n : {128u, 512u, 2048u}) {
        std::vector<cedr_cplx> buf(n);
        (void)CEDR_FFT(buf.data(), buf.data(), n);
      }
    }
  });
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(runtime.wait_all(30.0).ok());
  EXPECT_TRUE(runtime.shutdown().ok());

  auto profiled =
      platform::profile_costs(runtime.trace_log(), config.platform);
  ASSERT_TRUE(profiled.ok());
  EXPECT_EQ(profiled->tasks_used, 15u);
  ASSERT_GE(profiled->entries.size(), 1u);
  const auto& entry = profiled->entries[0];
  EXPECT_EQ(entry.kernel, platform::KernelId::kFft);
  EXPECT_EQ(entry.cls, platform::PeClass::kCpu);
  EXPECT_EQ(entry.samples, 15u);
  EXPECT_GT(entry.mean_service_s, 0.0);
  // Fitted estimates are sane: positive and increasing in size.
  const double small = profiled->costs.estimate(
      platform::KernelId::kFft, platform::PeClass::kCpu, 128, 0);
  const double large = profiled->costs.estimate(
      platform::KernelId::kFft, platform::PeClass::kCpu, 2048, 0);
  EXPECT_GT(small, 0.0);
  EXPECT_GE(large, small);
  // Unprofiled pairings keep their preset coefficients.
  EXPECT_DOUBLE_EQ(profiled->costs.estimate(platform::KernelId::kMmult,
                                            platform::PeClass::kCpu, 64, 0),
                   config.platform.costs.estimate(platform::KernelId::kMmult,
                                                  platform::PeClass::kCpu, 64,
                                                  0));
}

TEST(Profiling, SyntheticAffineRecovery) {
  // Exact affine service times must be recovered (within fp noise).
  trace::TraceLog log;
  const double fixed = 5e-6;
  const double per_point = 2e-8;
  double t = 0.0;
  for (const std::size_t n : {100u, 200u, 400u, 800u}) {
    for (int rep = 0; rep < 2; ++rep) {
      const double service = fixed + per_point * static_cast<double>(n);
      log.add_task(trace::TaskRecord{.kernel_name = "ZIP",
                                     .pe_name = "cpu0",
                                     .problem_size = n,
                                     .enqueue_time = t,
                                     .start_time = t,
                                     .end_time = t + service});
      t += service;
    }
  }
  const auto platform = platform::host(1);
  auto profiled = platform::profile_costs(log, platform);
  ASSERT_TRUE(profiled.ok());
  ASSERT_EQ(profiled->entries.size(), 1u);
  EXPECT_NEAR(profiled->entries[0].fitted.fixed_s, fixed, 1e-9);
  EXPECT_NEAR(profiled->entries[0].fitted.per_point_s, per_point, 1e-12);
}

TEST(Profiling, SkipsUnknownRecordsAndValidates) {
  trace::TraceLog log;
  log.add_task(trace::TaskRecord{.kernel_name = "NOPE", .pe_name = "cpu0",
                                 .start_time = 0, .end_time = 1});
  log.add_task(trace::TaskRecord{.kernel_name = "FFT", .pe_name = "ghost9",
                                 .start_time = 0, .end_time = 1});
  const auto platform = platform::host(1);
  EXPECT_EQ(platform::profile_costs(log, platform).status().code(),
            StatusCode::kFailedPrecondition);  // nothing usable

  trace::TraceLog empty;
  EXPECT_FALSE(platform::profile_costs(empty, platform).ok());
}

}  // namespace
}  // namespace cedr
