// Tests for the WiFi TX baseband stage kernels.
#include <gtest/gtest.h>

#include "cedr/common/rng.h"
#include "cedr/kernels/wifi.h"

namespace cedr::kernels {
namespace {

BitVec random_bits(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  BitVec bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_below(2));
  return bits;
}

TEST(Scrambler, IsSelfInverse) {
  const BitVec bits = random_bits(256, 1);
  const BitVec once = scramble(bits, 0x5D);
  const BitVec twice = scramble(once, 0x5D);
  EXPECT_EQ(twice, bits);
}

TEST(Scrambler, ChangesTheBitstream) {
  const BitVec bits(128, 0);
  const BitVec out = scramble(bits, 0x5D);
  std::size_t ones = 0;
  for (const auto b : out) ones += b;
  EXPECT_GT(ones, 32u);  // LFSR whitening turns zeros into ~half ones
  EXPECT_LT(ones, 96u);
}

TEST(Scrambler, ZeroSeedIsCoercedToNonzero) {
  const BitVec bits = random_bits(64, 2);
  // seed 0 would freeze the LFSR; the implementation must not emit identity.
  EXPECT_NE(scramble(bits, 0), bits);
  EXPECT_EQ(scramble(scramble(bits, 0), 0), bits);
}

TEST(Scrambler, DifferentSeedsDiffer) {
  const BitVec bits = random_bits(128, 3);
  EXPECT_NE(scramble(bits, 0x5D), scramble(bits, 0x2A));
}

TEST(ConvEncoder, RateOneHalf) {
  const BitVec bits = random_bits(100, 4);
  EXPECT_EQ(convolutional_encode(bits).size(), 200u);
}

TEST(ConvEncoder, KnownAllZeroInput) {
  const BitVec zeros(16, 0);
  const BitVec coded = convolutional_encode(zeros);
  for (const auto b : coded) EXPECT_EQ(b, 0);
}

class ViterbiRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ViterbiRoundTrip, DecodesCleanCodewords) {
  BitVec bits = random_bits(GetParam(), GetParam() * 31 + 7);
  bits.insert(bits.end(), 6, 0);  // terminate the trellis
  const BitVec coded = convolutional_encode(bits);
  const auto decoded = viterbi_decode(coded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, bits);
}

INSTANTIATE_TEST_SUITE_P(Lengths, ViterbiRoundTrip,
                         ::testing::Values(1, 8, 64, 100, 257));

TEST(Viterbi, CorrectsIsolatedBitErrors) {
  BitVec bits = random_bits(64, 5);
  bits.insert(bits.end(), 6, 0);
  BitVec coded = convolutional_encode(bits);
  // Flip three well-separated coded bits; K=7 code corrects them all.
  coded[10] ^= 1;
  coded[60] ^= 1;
  coded[110] ^= 1;
  const auto decoded = viterbi_decode(coded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, bits);
}

TEST(Viterbi, RejectsOddLength) {
  const BitVec coded(9, 0);
  EXPECT_EQ(viterbi_decode(coded).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Interleaver, RoundTrips) {
  const BitVec bits = random_bits(140, 6);
  const auto inter = interleave(bits, 7);
  ASSERT_TRUE(inter.ok());
  EXPECT_NE(*inter, bits);
  const auto back = deinterleave(*inter, 7);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, bits);
}

TEST(Interleaver, SpreadsAdjacentBits) {
  BitVec bits(21, 0);
  bits[0] = bits[1] = bits[2] = 1;  // a burst
  const auto inter = interleave(bits, 3);
  ASSERT_TRUE(inter.ok());
  // After interleaving the three set bits are at stride rows = 7 apart.
  std::vector<std::size_t> positions;
  for (std::size_t i = 0; i < inter->size(); ++i) {
    if ((*inter)[i]) positions.push_back(i);
  }
  ASSERT_EQ(positions.size(), 3u);
  EXPECT_GE(positions[1] - positions[0], 7u);
  EXPECT_GE(positions[2] - positions[1], 7u);
}

TEST(Interleaver, RejectsIndivisibleLength) {
  const BitVec bits(10, 0);
  EXPECT_FALSE(interleave(bits, 3).ok());
  EXPECT_FALSE(deinterleave(bits, 3).ok());
  EXPECT_FALSE(interleave(bits, 0).ok());
}

TEST(Qpsk, RoundTrips) {
  const BitVec bits = random_bits(128, 7);
  const auto symbols = qpsk_modulate(bits);
  ASSERT_TRUE(symbols.ok());
  EXPECT_EQ(symbols->size(), 64u);
  EXPECT_EQ(qpsk_demodulate(*symbols), bits);
}

TEST(Qpsk, UnitEnergySymbols) {
  const BitVec bits = random_bits(64, 8);
  const auto symbols = qpsk_modulate(bits);
  ASSERT_TRUE(symbols.ok());
  for (const cfloat& s : *symbols) {
    EXPECT_NEAR(std::abs(s), 1.0f, 1e-5f);
  }
}

TEST(Qpsk, SurvivesModerateNoise) {
  Rng rng(9);
  const BitVec bits = random_bits(256, 9);
  auto symbols = qpsk_modulate(bits);
  ASSERT_TRUE(symbols.ok());
  for (cfloat& s : *symbols) {
    s += cfloat(static_cast<float>(rng.normal(0.0, 0.2)),
                static_cast<float>(rng.normal(0.0, 0.2)));
  }
  EXPECT_EQ(qpsk_demodulate(*symbols), bits);
}

TEST(Qpsk, RejectsOddBitCount) {
  const BitVec bits(7, 0);
  EXPECT_FALSE(qpsk_modulate(bits).ok());
}

TEST(Crc32, KnownVectors) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  const std::string s = "123456789";
  const std::vector<std::uint8_t> bytes(s.begin(), s.end());
  EXPECT_EQ(crc32(bytes), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0x00000000u);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> bytes(64, 0xA5);
  const std::uint32_t good = crc32(bytes);
  bytes[20] ^= 0x10;
  EXPECT_NE(crc32(bytes), good);
}

TEST(PackBits, RoundTrips) {
  const BitVec bits = random_bits(64, 10);
  const auto bytes = pack_bits(bits);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes->size(), 8u);
  EXPECT_EQ(unpack_bytes(*bytes), bits);
}

TEST(PackBits, RejectsNonByteMultiple) {
  EXPECT_FALSE(pack_bits(BitVec(9, 0)).ok());
}

TEST(PackBits, LsbFirstConvention) {
  BitVec bits(8, 0);
  bits[0] = 1;  // LSB of byte 0
  const auto bytes = pack_bits(bits);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ((*bytes)[0], 0x01);
}

}  // namespace
}  // namespace cedr::kernels
