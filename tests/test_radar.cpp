// Tests for Pulse Doppler radar kernels.
#include <gtest/gtest.h>

#include "cedr/kernels/fft.h"
#include "cedr/kernels/radar.h"

namespace cedr::kernels {
namespace {

RadarParams small_params() {
  RadarParams p;
  p.num_pulses = 32;
  p.samples_per_pulse = 128;
  p.prf_hz = 10'000.0;
  p.sample_rate_hz = 1.0e6;
  p.carrier_hz = 3.0e9;
  return p;
}

TEST(Chirp, HasUnitMagnitudeSamples) {
  const auto chirp = make_chirp(64, 4.0e5, 1.0e6);
  ASSERT_EQ(chirp.size(), 64u);
  for (const cfloat& s : chirp) EXPECT_NEAR(std::abs(s), 1.0f, 1e-5f);
}

TEST(Chirp, SweepsFrequency) {
  // Instantaneous frequency rises across the pulse: the phase increment of
  // the last samples must exceed that of the first.
  const auto chirp = make_chirp(128, 4.0e5, 1.0e6);
  auto phase_delta = [&](std::size_t i) {
    return std::abs(std::arg(chirp[i + 1] * std::conj(chirp[i])));
  };
  EXPECT_GT(phase_delta(120), phase_delta(10));
}

TEST(MatchedFilter, PeaksAtTargetDelay) {
  const RadarParams p = small_params();
  const std::size_t n = p.samples_per_pulse;
  const auto chirp = make_chirp(n / 4, 0.4 * p.sample_rate_hz, p.sample_rate_hz);
  RadarTarget target{.range_bin = 37, .doppler_hz = 0.0, .magnitude = 1.0};
  Rng rng(1);
  const auto cube = synthesize_echo(p, chirp, target, 0.0, rng);

  std::vector<cfloat> chirp_padded(n);
  std::copy(chirp.begin(), chirp.end(), chirp_padded.begin());
  std::vector<cfloat> chirp_freq(n);
  ASSERT_TRUE(fft(chirp_padded, chirp_freq, false).ok());

  std::vector<cfloat> compressed(n);
  ASSERT_TRUE(matched_filter(std::span<const cfloat>(cube.data(), n),
                             chirp_freq, compressed).ok());
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (std::abs(compressed[i]) > std::abs(compressed[argmax])) argmax = i;
  }
  EXPECT_EQ(argmax, target.range_bin);
}

TEST(MatchedFilter, RejectsSizeMismatch) {
  std::vector<cfloat> pulse(16), chirp(16), out(8);
  EXPECT_EQ(matched_filter(pulse, chirp, out).code(),
            StatusCode::kInvalidArgument);
}

TEST(DopplerFft, RejectsBadCubeSize) {
  std::vector<cfloat> cube(100), out(100);
  EXPECT_EQ(doppler_fft(cube, 8, 16, out).code(),
            StatusCode::kInvalidArgument);
}

TEST(DopplerFft, StationaryTargetInZeroBin) {
  const RadarParams p = small_params();
  const std::size_t n = p.samples_per_pulse;
  // Constant (already compressed) return in one range bin across pulses.
  std::vector<cfloat> compressed(p.num_pulses * n, cfloat(0.0f, 0.0f));
  for (std::size_t pl = 0; pl < p.num_pulses; ++pl) {
    compressed[pl * n + 11] = cfloat(1.0f, 0.0f);
  }
  std::vector<cfloat> out(compressed.size());
  ASSERT_TRUE(doppler_fft(compressed, p.num_pulses, n, out).ok());
  const RadarTarget peak = find_peak(out, p);
  EXPECT_EQ(peak.range_bin, 11u);
  EXPECT_NEAR(peak.doppler_hz, 0.0, 1e-6);
}

struct PdCase {
  std::size_t range_bin;
  double doppler_hz;
};

class PulseDopplerEndToEnd : public ::testing::TestWithParam<PdCase> {};

TEST_P(PulseDopplerEndToEnd, RecoversRangeAndVelocity) {
  const RadarParams p = small_params();
  const std::size_t n = p.samples_per_pulse;
  const auto chirp = make_chirp(n / 4, 0.4 * p.sample_rate_hz, p.sample_rate_hz);

  RadarTarget truth{.range_bin = GetParam().range_bin,
                    .doppler_hz = GetParam().doppler_hz,
                    .magnitude = 2.0};
  Rng rng(42);
  const auto cube = synthesize_echo(p, chirp, truth, 0.02, rng);

  std::vector<cfloat> chirp_padded(n);
  std::copy(chirp.begin(), chirp.end(), chirp_padded.begin());
  std::vector<cfloat> chirp_freq(n);
  ASSERT_TRUE(fft(chirp_padded, chirp_freq, false).ok());

  std::vector<cfloat> compressed(p.num_pulses * n);
  for (std::size_t pl = 0; pl < p.num_pulses; ++pl) {
    ASSERT_TRUE(matched_filter(
                    std::span<const cfloat>(&cube[pl * n], n), chirp_freq,
                    std::span<cfloat>(&compressed[pl * n], n))
                    .ok());
  }
  std::vector<cfloat> rd(compressed.size());
  ASSERT_TRUE(doppler_fft(compressed, p.num_pulses, n, rd).ok());
  const RadarTarget est = find_peak(rd, p);

  EXPECT_NEAR(static_cast<double>(est.range_bin),
              static_cast<double>(truth.range_bin), 1.0);
  // Doppler resolution is prf/num_pulses = 312.5 Hz; allow one bin.
  EXPECT_NEAR(est.doppler_hz, truth.doppler_hz, p.prf_hz / p.num_pulses);
  // Velocity must be consistent with the estimated Doppler.
  EXPECT_NEAR(est.velocity_mps,
              est.doppler_hz * p.speed_of_light / (2.0 * p.carrier_hz), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Targets, PulseDopplerEndToEnd,
    ::testing::Values(PdCase{10, 0.0}, PdCase{25, 625.0}, PdCase{60, 1250.0},
                      PdCase{40, -937.5}, PdCase{5, 3125.0}));

TEST(FindPeak, NegativeDopplerWrapsCorrectly) {
  RadarParams p = small_params();
  std::vector<cfloat> rd(p.num_pulses * p.samples_per_pulse,
                         cfloat(0.0f, 0.0f));
  // Upper-half bin (num_pulses - 2) corresponds to -2 * prf / num_pulses.
  rd[(p.num_pulses - 2) * p.samples_per_pulse + 3] = cfloat(5.0f, 0.0f);
  const RadarTarget peak = find_peak(rd, p);
  EXPECT_EQ(peak.range_bin, 3u);
  EXPECT_NEAR(peak.doppler_hz, -2.0 * p.prf_hz / p.num_pulses, 1e-6);
  EXPECT_LT(peak.velocity_mps, 0.0);
}

TEST(SynthesizeEcho, NoiseRaisesFloor) {
  const RadarParams p = small_params();
  const auto chirp = make_chirp(16, 1e5, p.sample_rate_hz);
  RadarTarget target{.range_bin = 5, .doppler_hz = 0.0, .magnitude = 1.0};
  Rng rng_a(7), rng_b(7);
  const auto clean = synthesize_echo(p, chirp, target, 0.0, rng_a);
  const auto noisy = synthesize_echo(p, chirp, target, 0.5, rng_b);
  EXPECT_GT(energy(noisy), energy(clean));
}

}  // namespace
}  // namespace cedr::kernels
