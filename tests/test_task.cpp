// Tests for the task model: TaskGraph invariants, topological order,
// runnability, and the JSON DAG loader.
#include <gtest/gtest.h>

#include "cedr/task/dag_loader.h"
#include "cedr/task/task.h"

namespace cedr::task {
namespace {

Task make_task(TaskId id, platform::KernelId kernel = platform::KernelId::kFft) {
  Task t;
  t.id = id;
  t.name = "t" + std::to_string(id);
  t.kernel = kernel;
  t.problem_size = 256;
  return t;
}

TEST(TaskGraph, AddAndQuery) {
  TaskGraph g;
  ASSERT_TRUE(g.add_task(make_task(0)).ok());
  ASSERT_TRUE(g.add_task(make_task(1)).ok());
  ASSERT_TRUE(g.add_edge(0, 1).ok());
  EXPECT_EQ(g.size(), 2u);
  EXPECT_TRUE(g.contains(0));
  EXPECT_FALSE(g.contains(7));
  EXPECT_EQ(g.get(1).name, "t1");
  EXPECT_EQ(g.successors(0), std::vector<TaskId>{1});
  EXPECT_EQ(g.predecessors(1), std::vector<TaskId>{0});
}

TEST(TaskGraph, RejectsDuplicateIds) {
  TaskGraph g;
  ASSERT_TRUE(g.add_task(make_task(5)).ok());
  EXPECT_EQ(g.add_task(make_task(5)).code(), StatusCode::kAlreadyExists);
}

TEST(TaskGraph, RejectsSelfAndDanglingEdges) {
  TaskGraph g;
  ASSERT_TRUE(g.add_task(make_task(0)).ok());
  EXPECT_EQ(g.add_edge(0, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.add_edge(0, 9).code(), StatusCode::kNotFound);
}

TEST(TaskGraph, DuplicateEdgesCollapse) {
  TaskGraph g;
  ASSERT_TRUE(g.add_task(make_task(0)).ok());
  ASSERT_TRUE(g.add_task(make_task(1)).ok());
  ASSERT_TRUE(g.add_edge(0, 1).ok());
  ASSERT_TRUE(g.add_edge(0, 1).ok());
  EXPECT_EQ(g.successors(0).size(), 1u);
  EXPECT_EQ(g.predecessors(1).size(), 1u);
}

TEST(TaskGraph, HeadNodes) {
  TaskGraph g;
  for (TaskId id = 0; id < 4; ++id) ASSERT_TRUE(g.add_task(make_task(id)).ok());
  ASSERT_TRUE(g.add_edge(0, 2).ok());
  ASSERT_TRUE(g.add_edge(1, 2).ok());
  ASSERT_TRUE(g.add_edge(2, 3).ok());
  const auto heads = g.head_nodes();
  EXPECT_EQ(heads, (std::vector<TaskId>{0, 1}));
}

TEST(TaskGraph, TopologicalOrderRespectsEdges) {
  TaskGraph g;
  for (TaskId id = 0; id < 6; ++id) ASSERT_TRUE(g.add_task(make_task(id)).ok());
  // Diamond plus a tail: 0 -> {1,2} -> 3 -> 4, and 5 independent.
  ASSERT_TRUE(g.add_edge(0, 1).ok());
  ASSERT_TRUE(g.add_edge(0, 2).ok());
  ASSERT_TRUE(g.add_edge(1, 3).ok());
  ASSERT_TRUE(g.add_edge(2, 3).ok());
  ASSERT_TRUE(g.add_edge(3, 4).ok());
  const auto order = g.topological_order();
  ASSERT_TRUE(order.ok());
  ASSERT_EQ(order->size(), 6u);
  auto position = [&](TaskId id) {
    return std::find(order->begin(), order->end(), id) - order->begin();
  };
  EXPECT_LT(position(0), position(1));
  EXPECT_LT(position(0), position(2));
  EXPECT_LT(position(1), position(3));
  EXPECT_LT(position(2), position(3));
  EXPECT_LT(position(3), position(4));
}

TEST(TaskGraph, DetectsCycles) {
  TaskGraph g;
  for (TaskId id = 0; id < 3; ++id) ASSERT_TRUE(g.add_task(make_task(id)).ok());
  ASSERT_TRUE(g.add_edge(0, 1).ok());
  ASSERT_TRUE(g.add_edge(1, 2).ok());
  ASSERT_TRUE(g.add_edge(2, 0).ok());
  EXPECT_EQ(g.topological_order().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(TaskGraph, LargeGraphTopoIsLinearish) {
  // Smoke check that big DAGs (LD scale) are handled without quadratic blowup.
  TaskGraph g;
  constexpr TaskId kN = 20000;
  for (TaskId id = 0; id < kN; ++id) {
    ASSERT_TRUE(g.add_task(make_task(id, platform::KernelId::kGeneric)).ok());
    if (id > 0) ASSERT_TRUE(g.add_edge(id - 1, id).ok());
  }
  const auto order = g.topological_order();
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order->size(), kN);
  EXPECT_EQ(order->front(), 0u);
  EXPECT_EQ(order->back(), kN - 1);
}

TEST(TaskRunnability, FollowsSupportAndImpls) {
  Task t = make_task(0, platform::KernelId::kFft);
  // No impls: runnable anywhere the kernel is supported.
  EXPECT_TRUE(t.runnable_on(platform::PeClass::kCpu));
  EXPECT_TRUE(t.runnable_on(platform::PeClass::kFftAccel));
  EXPECT_FALSE(t.runnable_on(platform::PeClass::kMmultAccel));
  // With a CPU-only impl the accelerator is no longer admissible.
  t.set_impl(platform::PeClass::kCpu,
             [](ExecContext&) { return Status::Ok(); });
  EXPECT_TRUE(t.runnable_on(platform::PeClass::kCpu));
  EXPECT_FALSE(t.runnable_on(platform::PeClass::kFftAccel));
}

// ---- DAG JSON loader -------------------------------------------------------

constexpr const char* kValidDag = R"({
  "app_name": "demo",
  "tasks": [
    {"id": 0, "name": "fft_a", "kernel": "FFT", "size": 256, "bytes": 4096,
     "predecessors": []},
    {"id": 1, "name": "fft_b", "kernel": "FFT", "size": 256, "bytes": 4096},
    {"id": 2, "name": "combine", "kernel": "ZIP", "size": 256,
     "predecessors": [0, 1]},
    {"id": 3, "name": "post", "kernel": "GENERIC", "size": 10000,
     "predecessors": [2]}
  ]
})";

TEST(DagLoader, ParsesValidDocument) {
  auto doc = json::parse(kValidDag);
  ASSERT_TRUE(doc.ok());
  auto app = app_from_json(*doc);
  ASSERT_TRUE(app.ok());
  EXPECT_EQ(app->name, "demo");
  EXPECT_EQ(app->graph.size(), 4u);
  EXPECT_EQ(app->graph.get(2).kernel, platform::KernelId::kZip);
  EXPECT_EQ(app->graph.predecessors(2).size(), 2u);
  EXPECT_EQ(app->graph.head_nodes(), (std::vector<TaskId>{0, 1}));
  EXPECT_EQ(app->graph.get(0).data_bytes, 4096u);
  EXPECT_EQ(app->graph.get(3).problem_size, 10000u);
}

TEST(DagLoader, RoundTripsThroughJson) {
  auto doc = json::parse(kValidDag);
  auto app = app_from_json(*doc);
  ASSERT_TRUE(app.ok());
  auto app2 = app_from_json(app_to_json(*app));
  ASSERT_TRUE(app2.ok());
  EXPECT_EQ(app2->graph.size(), app->graph.size());
  for (const Task& t : app->graph.tasks()) {
    EXPECT_EQ(app2->graph.get(t.id).kernel, t.kernel);
    EXPECT_EQ(app2->graph.get(t.id).name, t.name);
    EXPECT_EQ(app2->graph.predecessors(t.id), app->graph.predecessors(t.id));
  }
}

struct BadDag {
  const char* name;
  const char* text;
};

class DagLoaderErrors : public ::testing::TestWithParam<BadDag> {};

TEST_P(DagLoaderErrors, Rejected) {
  auto doc = json::parse(GetParam().text);
  ASSERT_TRUE(doc.ok()) << "test input must be valid JSON";
  EXPECT_FALSE(app_from_json(*doc).ok()) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, DagLoaderErrors,
    ::testing::Values(
        BadDag{"missing_name", R"({"tasks": []})"},
        BadDag{"missing_tasks", R"({"app_name": "x"})"},
        BadDag{"tasks_not_array", R"({"app_name": "x", "tasks": 3})"},
        BadDag{"task_without_id",
               R"({"app_name": "x", "tasks": [{"kernel": "FFT"}]})"},
        BadDag{"negative_id",
               R"({"app_name": "x", "tasks": [{"id": -1}]})"},
        BadDag{"unknown_kernel",
               R"({"app_name": "x", "tasks": [{"id": 0, "kernel": "WAT"}]})"},
        BadDag{"duplicate_id",
               R"({"app_name": "x", "tasks": [{"id": 0}, {"id": 0}]})"},
        BadDag{"dangling_predecessor",
               R"({"app_name": "x",
                   "tasks": [{"id": 0, "predecessors": [7]}]})"},
        BadDag{"cyclic",
               R"({"app_name": "x",
                   "tasks": [{"id": 0, "predecessors": [1]},
                             {"id": 1, "predecessors": [0]}]})"}),
    [](const auto& info) { return info.param.name; });

TEST(DagLoader, LoadsFromDisk) {
  const std::string path = ::testing::TempDir() + "/cedr_dag_test.json";
  {
    auto doc = json::parse(kValidDag);
    ASSERT_TRUE(json::write_file(path, *doc).ok());
  }
  auto app = load_app(path);
  ASSERT_TRUE(app.ok());
  EXPECT_EQ(app->name, "demo");
  EXPECT_EQ(load_app("/nonexistent.json").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace cedr::task
