// Tests for the public cedr.h API: standalone correctness of every call,
// non-blocking handle semantics, argument validation, and equivalence of
// standalone vs runtime-attached execution.
#include <gtest/gtest.h>

#include "cedr/cedr.h"
#include "cedr/common/rng.h"
#include "cedr/kernels/fft.h"
#include "cedr/kernels/mmult.h"
#include "cedr/kernels/zip.h"
#include "cedr/runtime/runtime.h"

namespace cedr {
namespace {

std::vector<cedr_cplx> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cedr_cplx> v(n);
  for (auto& x : v) {
    x = cedr_cplx(static_cast<float>(rng.uniform(-1, 1)),
                  static_cast<float>(rng.uniform(-1, 1)));
  }
  return v;
}

TEST(ApiStandalone, NotAttachedOutsideRuntime) {
  EXPECT_FALSE(api::runtime_attached());
}

TEST(ApiStandalone, FftMatchesKernel) {
  const auto in = random_signal(256, 1);
  std::vector<cedr_cplx> out(256), expected(256);
  ASSERT_TRUE(CEDR_FFT(in.data(), out.data(), 256).ok());
  ASSERT_TRUE(kernels::fft(in, expected, false).ok());
  EXPECT_LT(max_abs_diff(out, expected), 1e-6f);
}

TEST(ApiStandalone, IfftInvertsFft) {
  const auto in = random_signal(512, 2);
  std::vector<cedr_cplx> freq(512), back(512);
  ASSERT_TRUE(CEDR_FFT(in.data(), freq.data(), 512).ok());
  ASSERT_TRUE(CEDR_IFFT(freq.data(), back.data(), 512).ok());
  EXPECT_LT(max_abs_diff(in, back), 1e-4f);
}

TEST(ApiStandalone, FftAllowsInPlace) {
  auto buf = random_signal(128, 3);
  const auto copy = buf;
  std::vector<cedr_cplx> expected(128);
  ASSERT_TRUE(kernels::fft(copy, expected, false).ok());
  ASSERT_TRUE(CEDR_FFT(buf.data(), buf.data(), 128).ok());
  EXPECT_LT(max_abs_diff(buf, expected), 1e-6f);
}

TEST(ApiStandalone, ZipAllOps) {
  const auto a = random_signal(64, 4);
  const auto b = random_signal(64, 5);
  std::vector<cedr_cplx> out(64);
  for (const auto op :
       {CedrZipOp::kMultiply, CedrZipOp::kConjugateMultiply, CedrZipOp::kAdd,
        CedrZipOp::kSubtract}) {
    ASSERT_TRUE(CEDR_ZIP(a.data(), b.data(), out.data(), 64, op).ok());
    std::vector<cedr_cplx> expected(64);
    ASSERT_TRUE(
        kernels::zip(a, b, expected, static_cast<kernels::ZipOp>(op)).ok());
    EXPECT_LT(max_abs_diff(out, expected), 1e-6f);
  }
}

TEST(ApiStandalone, MmultMatchesKernel) {
  Rng rng(6);
  std::vector<float> a(6 * 4), b(4 * 5), c(6 * 5), expected(6 * 5);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  ASSERT_TRUE(CEDR_MMULT(a.data(), b.data(), c.data(), 6, 4, 5).ok());
  ASSERT_TRUE(kernels::mmult(a, b, expected, 6, 4, 5).ok());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], expected[i], 1e-4f);
  }
}

TEST(ApiValidation, RejectsBadArguments) {
  std::vector<cedr_cplx> buf(100);
  EXPECT_EQ(CEDR_FFT(nullptr, buf.data(), 64).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(CEDR_FFT(buf.data(), buf.data(), 100).code(),
            StatusCode::kInvalidArgument);  // not a power of two
  EXPECT_EQ(CEDR_ZIP(buf.data(), nullptr, buf.data(), 64).code(),
            StatusCode::kInvalidArgument);
  std::vector<float> m(4);
  EXPECT_EQ(CEDR_MMULT(m.data(), m.data(), m.data(), 0, 2, 2).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(CEDR_MMULT(nullptr, m.data(), m.data(), 2, 1, 2).code(),
            StatusCode::kInvalidArgument);
}

TEST(ApiNonBlocking, RejectsBadArgumentsWithNullHandle) {
  std::vector<cedr_cplx> buf(100);
  EXPECT_EQ(CEDR_FFT_NB(nullptr, buf.data(), 64), nullptr);
  EXPECT_EQ(CEDR_FFT_NB(buf.data(), buf.data(), 100), nullptr);
  EXPECT_EQ(CEDR_ZIP_NB(buf.data(), buf.data(), nullptr, 64), nullptr);
  EXPECT_EQ(CEDR_MMULT_NB(nullptr, nullptr, nullptr, 1, 1, 1), nullptr);
}

TEST(ApiNonBlocking, StandaloneHandlesAreBornComplete) {
  auto in = random_signal(128, 7);
  std::vector<cedr_cplx> out(128);
  cedr_handle_t handle = CEDR_FFT_NB(in.data(), out.data(), 128);
  ASSERT_NE(handle, nullptr);
  EXPECT_TRUE(CEDR_POLL(handle));
  EXPECT_TRUE(CEDR_WAIT(handle).ok());
  std::vector<cedr_cplx> expected(128);
  ASSERT_TRUE(kernels::fft(in, expected, false).ok());
  EXPECT_LT(max_abs_diff(out, expected), 1e-6f);
}

TEST(ApiNonBlocking, BarrierWaitsAllAndReportsFirstError) {
  auto a = random_signal(64, 8);
  std::vector<cedr_cplx> out1(64), out2(64);
  cedr_handle_t handles[3] = {
      CEDR_FFT_NB(a.data(), out1.data(), 64),
      CEDR_IFFT_NB(a.data(), out2.data(), 64),
      nullptr,  // invalid entry must surface as an error
  };
  EXPECT_EQ(CEDR_BARRIER(handles, 3).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(handles[0], nullptr);  // consumed
  EXPECT_EQ(handles[1], nullptr);
}

TEST(ApiNonBlocking, WaitOnNullHandleFails) {
  EXPECT_EQ(CEDR_WAIT(nullptr).code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(CEDR_POLL(nullptr));
  EXPECT_TRUE(CEDR_BARRIER(nullptr, 0).ok());
}

TEST(ApiUnderRuntime, MatchesStandaloneResults) {
  const auto in = random_signal(256, 9);
  std::vector<cedr_cplx> standalone_out(256);
  ASSERT_TRUE(CEDR_FFT(in.data(), standalone_out.data(), 256).ok());

  rt::RuntimeConfig config;
  config.platform = platform::host(2, 1);
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  std::vector<cedr_cplx> runtime_out(256);
  auto instance = runtime.submit_api("fft", [&in, &runtime_out] {
    ASSERT_TRUE(api::runtime_attached());
    ASSERT_TRUE(CEDR_FFT(in.data(), runtime_out.data(), 256).ok());
  });
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(runtime.wait_all(30.0).ok());
  EXPECT_TRUE(runtime.shutdown().ok());
  EXPECT_LT(max_abs_diff(runtime_out, standalone_out), 1e-6f);
}

TEST(ApiUnderRuntime, NonBlockingOverlapsAndCompletes) {
  rt::RuntimeConfig config;
  config.platform = platform::host(2, 1);
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  constexpr std::size_t kCalls = 16;
  auto instance = runtime.submit_api("nb", [] {
    std::vector<std::vector<cedr_cplx>> bufs(kCalls,
                                             std::vector<cedr_cplx>(128));
    std::vector<cedr_handle_t> handles(kCalls);
    for (std::size_t i = 0; i < kCalls; ++i) {
      bufs[i][i] = cedr_cplx(1.0f, 0.0f);
      handles[i] = CEDR_FFT_NB(bufs[i].data(), bufs[i].data(), 128);
      ASSERT_NE(handles[i], nullptr);
    }
    ASSERT_TRUE(CEDR_BARRIER(handles.data(), handles.size()).ok());
    for (std::size_t i = 0; i < kCalls; ++i) {
      // FFT of a shifted delta has unit magnitude everywhere.
      EXPECT_NEAR(std::abs(bufs[i][3]), 1.0f, 1e-4f);
    }
  });
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(runtime.wait_all(30.0).ok());
  EXPECT_TRUE(runtime.shutdown().ok());
  EXPECT_EQ(runtime.trace_log().tasks().size(), kCalls);
}

TEST(ApiUnderRuntime, PollEventuallyTrue) {
  rt::RuntimeConfig config;
  config.platform = platform::host(1);
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  auto instance = runtime.submit_api("poll", [] {
    std::vector<cedr_cplx> buf(64);
    cedr_handle_t handle = CEDR_FFT_NB(buf.data(), buf.data(), 64);
    ASSERT_NE(handle, nullptr);
    while (!CEDR_POLL(handle)) {
    }
    EXPECT_TRUE(CEDR_WAIT(handle).ok());
  });
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(runtime.wait_all(30.0).ok());
  EXPECT_TRUE(runtime.shutdown().ok());
}

}  // namespace
}  // namespace cedr
