// Cross-module integration tests: API-to-scheduler routing constraints,
// app-pipeline equivalences, and concurrent IPC clients.
#include <gtest/gtest.h>

#include <thread>

#include "cedr/apps/lane_detection.h"
#include "cedr/cedr.h"
#include "cedr/ipc/ipc.h"
#include "cedr/kernels/image.h"
#include "cedr/runtime/runtime.h"

namespace cedr {
namespace {

TEST(Integration, OversizeFftNeverRoutesToAccelerator) {
  // The FFT IP caps at 2048 points (paper §III); a 4096-point CEDR_FFT must
  // execute on a CPU even when the accelerator looks infinitely cheap.
  rt::RuntimeConfig config;
  config.platform = platform::host(1, 1);
  config.platform.costs.set(platform::KernelId::kFft,
                            platform::PeClass::kFftAccel, {.fixed_s = 1e-12});
  config.platform.costs.set_transfer(platform::PeClass::kFftAccel, 0.0, 0.0);
  config.scheduler = "EFT";
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  auto instance = runtime.submit_api("big_fft", [] {
    std::vector<cedr_cplx> buf(4096);
    buf[1] = cedr_cplx(1.0f, 0.0f);
    ASSERT_TRUE(CEDR_FFT(buf.data(), buf.data(), 4096).ok());
    EXPECT_NEAR(std::abs(buf[100]), 1.0f, 1e-3f);
    // A 2048-point transform is accelerator-eligible by contrast.
    std::vector<cedr_cplx> small(2048);
    ASSERT_TRUE(CEDR_FFT(small.data(), small.data(), 2048).ok());
  });
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(runtime.wait_all(60.0).ok());
  EXPECT_TRUE(runtime.shutdown().ok());
  bool oversize_on_cpu = false;
  bool small_on_accel = false;
  for (const auto& task : runtime.trace_log().tasks()) {
    if (task.problem_size == 4096) {
      oversize_on_cpu = task.pe_name.rfind("cpu", 0) == 0;
    }
    if (task.problem_size == 2048) {
      small_on_accel = task.pe_name.rfind("fft", 0) == 0;
    }
  }
  EXPECT_TRUE(oversize_on_cpu);
  EXPECT_TRUE(small_on_accel);
}

TEST(Integration, CedrBlurMatchesKernelBlur) {
  // The decomposed CEDR-API Gaussian blur (per-row/column scheduled
  // transforms) must agree with the monolithic kernel implementation.
  kernels::GrayImage image(24, 40);
  Rng rng(3);
  for (auto& px : image.pixels) px = static_cast<float>(rng.uniform(0, 1));
  const auto reference = kernels::gaussian_blur_fft(image, 5, 1.1);
  ASSERT_TRUE(reference.ok());
  std::size_t fft_calls = 0;
  std::size_t ifft_calls = 0;
  const auto via_api = apps::gaussian_blur_cedr(image, 5, 1.1,
                                                /*nonblocking=*/true,
                                                fft_calls, ifft_calls);
  ASSERT_TRUE(via_api.ok());
  EXPECT_GT(fft_calls, 0u);
  EXPECT_GT(ifft_calls, 0u);
  for (std::size_t i = 0; i < reference->pixels.size(); ++i) {
    EXPECT_NEAR(reference->pixels[i], via_api->pixels[i], 1e-3f);
  }
}

TEST(Integration, ConcurrentIpcClients) {
  rt::RuntimeConfig config;
  config.platform = platform::host(2);
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  ipc::IpcServer server(runtime,
                        ::testing::TempDir() + "/cedr_concurrent.sock");
  ASSERT_TRUE(server.start().ok());

  // Several client threads hammer STATUS/WAIT concurrently; the daemon's
  // one-command-per-connection protocol must serve them all.
  constexpr int kClients = 6;
  std::atomic<int> successes{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &successes] {
      ipc::IpcClient client(server.socket_path());
      for (int i = 0; i < 20; ++i) {
        if (client.status().ok() && client.wait_all().ok()) ++successes;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(successes.load(), kClients * 20);
  server.stop();
  EXPECT_TRUE(runtime.shutdown().ok());
}

TEST(Integration, ShutdownWithInFlightApplicationsDrainsCleanly) {
  // shutdown() must wait for running applications instead of abandoning
  // them (destructor path included).
  auto runtime = std::make_unique<rt::Runtime>([] {
    rt::RuntimeConfig config;
    config.platform = platform::host(2, 1);
    return config;
  }());
  ASSERT_TRUE(runtime->start().ok());
  std::atomic<bool> finished{false};
  for (int a = 0; a < 4; ++a) {
    ASSERT_TRUE(runtime
                    ->submit_api("inflight" + std::to_string(a),
                                 [&finished] {
                                   std::vector<cedr_cplx> buf(1024);
                                   for (int i = 0; i < 20; ++i) {
                                     (void)CEDR_FFT(buf.data(), buf.data(),
                                                    1024);
                                   }
                                   finished = true;
                                 })
                    .ok());
  }
  // No wait_all: destructor-driven shutdown must drain everything.
  const auto tasks_before = runtime->trace_log().tasks().size();
  (void)tasks_before;
  runtime.reset();
  EXPECT_TRUE(finished.load());
}

}  // namespace
}  // namespace cedr
