// Tests for workload generation and trial aggregation.
#include <gtest/gtest.h>

#include "cedr/workload/workload.h"

namespace cedr::workload {
namespace {

TEST(Arrivals, PeriodFollowsInjectionRate) {
  sim::SimApp app = sim::make_wifi_tx_model();
  const Stream stream{.app = &app, .instances = 5};
  const auto arrivals = make_arrivals({&stream, 1}, /*rate_mbps=*/100.0,
                                      /*jitter=*/0.0, /*seed=*/1);
  ASSERT_EQ(arrivals.size(), 5u);
  const double period = app.frame_mbits / 100.0;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_NEAR(arrivals[i].time, i * period, 1e-12);
    EXPECT_EQ(arrivals[i].app, &app);
  }
}

TEST(Arrivals, HigherRateCompressesSchedule) {
  sim::SimApp app = sim::make_pulse_doppler_model();
  const Stream stream{.app = &app, .instances = 5};
  const auto slow = make_arrivals({&stream, 1}, 10.0, 0.0, 1);
  const auto fast = make_arrivals({&stream, 1}, 1000.0, 0.0, 1);
  EXPECT_GT(slow.back().time, 50.0 * fast.back().time);
}

TEST(Arrivals, JitterStaysWithinBoundAndIsSeeded) {
  sim::SimApp app = sim::make_wifi_tx_model();
  const Stream stream{.app = &app, .instances = 20};
  const double period = app.frame_mbits / 50.0;
  const auto a = make_arrivals({&stream, 1}, 50.0, 0.2, 7);
  const auto b = make_arrivals({&stream, 1}, 50.0, 0.2, 7);
  const auto c = make_arrivals({&stream, 1}, 50.0, 0.2, 8);
  ASSERT_EQ(a.size(), 20u);
  bool any_diff_seed = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time, b[i].time);  // same seed, same schedule
    any_diff_seed |= a[i].time != c[i].time;
  }
  EXPECT_TRUE(any_diff_seed);
  // Jitter bounded by 0.2 * period around the nominal grid; arrivals sorted.
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_GE(a[i].time, a[i - 1].time);
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_LE(std::abs(a[i].time - i * period), 0.2 * period + 1e-12);
  }
}

TEST(Arrivals, MultipleStreamsInterleaveSorted) {
  sim::SimApp pd = sim::make_pulse_doppler_model();
  sim::SimApp tx = sim::make_wifi_tx_model();
  const Stream streams[] = {{.app = &pd, .instances = 5},
                            {.app = &tx, .instances = 5}};
  const auto arrivals = make_arrivals(streams, 200.0, 0.1, 3);
  ASSERT_EQ(arrivals.size(), 10u);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_GE(arrivals[i].time, arrivals[i - 1].time);
  }
}

TEST(Arrivals, AppendingStreamDoesNotPerturbExistingOnes) {
  // The seeding contract: stream k draws from stream_seed(seed, k), so the
  // two-stream workload reproduces the one-stream workload's PD arrivals
  // exactly — adding an app to a scenario never shifts the others.
  sim::SimApp pd = sim::make_pulse_doppler_model();
  sim::SimApp tx = sim::make_wifi_tx_model();
  const Stream just_pd[] = {{.app = &pd, .instances = 8}};
  const Stream both[] = {{.app = &pd, .instances = 8},
                         {.app = &tx, .instances = 8}};
  const auto alone = make_arrivals(just_pd, 150.0, 0.3, 11);
  const auto merged = make_arrivals(both, 150.0, 0.3, 11);
  std::vector<double> pd_alone, pd_merged;
  for (const auto& a : alone) {
    if (a.app == &pd) pd_alone.push_back(a.time);
  }
  for (const auto& a : merged) {
    if (a.app == &pd) pd_merged.push_back(a.time);
  }
  ASSERT_EQ(pd_alone.size(), 8u);
  ASSERT_EQ(pd_merged.size(), 8u);
  for (std::size_t i = 0; i < pd_alone.size(); ++i) {
    EXPECT_DOUBLE_EQ(pd_alone[i], pd_merged[i]);
  }
}

TEST(Arrivals, StreamSeedsAreDistinct) {
  // Two identical streams in one workload must draw different jitter.
  sim::SimApp tx = sim::make_wifi_tx_model();
  const Stream streams[] = {{.app = &tx, .instances = 10},
                            {.app = &tx, .instances = 10}};
  const auto arrivals = make_arrivals(streams, 50.0, 0.4, 5);
  ASSERT_EQ(arrivals.size(), 20u);
  // With jitter on, the probability all 20 arrivals pair up exactly is nil.
  std::size_t distinct = 0;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    if (arrivals[i].time != arrivals[i - 1].time) ++distinct;
  }
  EXPECT_GT(distinct, 10u);
}

TEST(Arrivals, SkipsNullAndEmptyStreams) {
  sim::SimApp app = sim::make_wifi_tx_model();
  const Stream streams[] = {{.app = nullptr, .instances = 5},
                            {.app = &app, .instances = 0}};
  EXPECT_TRUE(make_arrivals(streams, 100.0, 0.0, 1).empty());
}

TEST(GenerateArrivals, RejectsBadSpecs) {
  sim::SimApp app = sim::make_wifi_tx_model();
  const Stream stream{.app = &app, .instances = 3};
  ArrivalSpec spec;
  spec.rate_mbps = -1.0;
  EXPECT_FALSE(generate_arrivals({&stream, 1}, spec, 1).ok());
  spec = {};
  spec.process = ArrivalProcess::kMmpp;
  spec.burst_ratio = 0.5;  // burst must be faster than quiet
  EXPECT_FALSE(generate_arrivals({&stream, 1}, spec, 1).ok());
  spec = {};
  spec.process = ArrivalProcess::kClosedLoop;
  spec.clients = 0;
  EXPECT_FALSE(generate_arrivals({&stream, 1}, spec, 1).ok());
}

TEST(GenerateArrivals, ProcessNamesRoundTrip) {
  for (const auto process :
       {ArrivalProcess::kPeriodic, ArrivalProcess::kPoisson,
        ArrivalProcess::kMmpp, ArrivalProcess::kClosedLoop}) {
    auto parsed = arrival_process_from_name(arrival_process_name(process));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, process);
  }
  EXPECT_FALSE(arrival_process_from_name("uniform").ok());
}

TEST(RateSweep, MatchesPaperGrid) {
  const auto rates = injection_rate_sweep();
  ASSERT_EQ(rates.size(), 29u);  // "29 injection rates between 10 and 2000"
  EXPECT_NEAR(rates.front(), 10.0, 1e-9);
  EXPECT_NEAR(rates.back(), 2000.0, 1e-9);
  for (std::size_t i = 1; i < rates.size(); ++i) {
    EXPECT_GT(rates[i], rates[i - 1]);
  }
}

TEST(RunPoint, ValidatesInputs) {
  sim::SimApp app = sim::make_wifi_tx_model();
  const Stream stream{.app = &app, .instances = 2};
  sim::SimConfig config;
  config.platform = platform::zcu102(3, 1, 0);
  EXPECT_FALSE(run_point(config, {&stream, 1}, 100.0, 0, 1).ok());
  EXPECT_FALSE(run_point(config, {&stream, 1}, -5.0, 3, 1).ok());
}

TEST(RunPoint, AveragesAcrossTrialsDeterministically) {
  sim::SimApp app = sim::make_wifi_tx_model();
  const Stream stream{.app = &app, .instances = 3};
  sim::SimConfig config;
  config.platform = platform::zcu102(3, 1, 0);
  auto a = run_point(config, {&stream, 1}, 200.0, 4, 99);
  auto b = run_point(config, {&stream, 1}, 200.0, 4, 99);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->trials, 4u);
  EXPECT_EQ(a->mean.apps, 3u);
  EXPECT_DOUBLE_EQ(a->mean.avg_execution_time, b->mean.avg_execution_time);
  EXPECT_GE(a->exec_time_stddev, 0.0);
  EXPECT_GT(a->mean.avg_execution_time, 0.0);
}

TEST(RunSweep, OneResultPerRate) {
  sim::SimApp app = sim::make_wifi_tx_model();
  const Stream stream{.app = &app, .instances = 2};
  sim::SimConfig config;
  config.platform = platform::zcu102(3, 1, 0);
  const std::vector<double> rates{50.0, 500.0};
  auto results = run_sweep(config, {&stream, 1}, rates, 2, 7);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);
  EXPECT_DOUBLE_EQ((*results)[0].rate_mbps, 50.0);
  EXPECT_DOUBLE_EQ((*results)[1].rate_mbps, 500.0);
  // Per-app execution time grows (or stays equal) as arrivals overlap more.
  EXPECT_LE((*results)[0].mean.avg_execution_time,
            (*results)[1].mean.avg_execution_time * 1.5);
}

}  // namespace
}  // namespace cedr::workload
