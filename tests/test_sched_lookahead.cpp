// Tests for frontier lookahead scheduling (docs/scheduling.md "Lookahead
// rounds"): Frontier window construction, staged predecessor sets, HEFT_LA
// placement semantics vs HEFT_RT, the reservation lifecycle in the emulator
// (honor, depth gating, fault-quarantine staleness), determinism across
// sweep parallelism, and the RR fast path's equivalence to the
// CandidateView path.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "cedr/scenario/runner.h"
#include "cedr/scenario/scenario.h"
#include "cedr/sched/frontier.h"
#include "cedr/sched/heuristics.h"
#include "cedr/sched/scheduler.h"
#include "cedr/sim/model.h"
#include "cedr/sim/simulator.h"

namespace cedr::sched {
namespace {

platform::PlatformConfig test_platform() { return platform::zcu102(3, 2, 0); }

std::vector<PeState> pe_states(const platform::PlatformConfig& platform) {
  std::vector<PeState> pes;
  for (std::size_t i = 0; i < platform.pes.size(); ++i) {
    pes.push_back(PeState{.pe_index = i,
                          .cls = platform.pes[i].cls,
                          .speed = platform.pes[i].speed_factor});
  }
  return pes;
}

ReadyTask fft_task(std::uint64_t key, double rank) {
  return ReadyTask{.task_key = key,
                   .kernel = platform::KernelId::kFft,
                   .problem_size = 256,
                   .data_bytes = 2 * 256 * 8,
                   .rank = rank};
}

ReadyTask generic_task(std::uint64_t key, double rank) {
  return ReadyTask{.task_key = key,
                   .kernel = platform::KernelId::kGeneric,
                   .problem_size = 50000,
                   .rank = rank};
}

TEST(Frontier, WindowShapeAndPredecessorSets) {
  const auto platform = test_platform();
  auto pes = pe_states(platform);
  const ScheduleContext ctx{.now = 0.0, .costs = &platform.costs};
  Frontier frontier;
  frontier.reset(pes, ctx);
  frontier.add_ready(fft_task(1, 5.0));
  frontier.add_ready(fft_task(2, 5.0));
  ASSERT_EQ(frontier.ready_count(), 2u);

  // One barrier level staged once, shared by three tasks.
  const std::size_t roots[] = {0, 1};
  const std::uint32_t level = frontier.stage_preds(roots);
  const std::size_t a = frontier.add_lookahead_staged(fft_task(3, 4.0), 1, level);
  const std::size_t b = frontier.add_lookahead_staged(fft_task(4, 4.0), 1, level);
  const std::size_t c = frontier.add_lookahead_staged(fft_task(5, 4.0), 1, level);
  // Plus one task with a private predecessor list.
  const std::size_t mids[] = {a, b, c};
  const std::size_t d = frontier.add_lookahead(generic_task(6, 3.0), 2, mids);

  EXPECT_EQ(frontier.size(), 6u);
  EXPECT_EQ(frontier.depth(0), 0u);
  EXPECT_EQ(frontier.depth(a), 1u);
  EXPECT_EQ(frontier.depth(d), 2u);
  // Ready and private-pred tasks belong to no staged set.
  EXPECT_EQ(frontier.pred_set(0), Frontier::kNoPredSet);
  EXPECT_EQ(frontier.pred_set(d), Frontier::kNoPredSet);
  // Staged members share the set id and form a contiguous index range.
  EXPECT_EQ(frontier.pred_set(a), level);
  EXPECT_EQ(frontier.pred_set(c), level);
  const auto [first, count] = frontier.set_members(level);
  EXPECT_EQ(first, a);
  EXPECT_EQ(count, 3u);
  // Both staged and private predecessor spans read back exactly.
  for (const std::size_t member : {a, b, c}) {
    const auto preds = frontier.preds(member);
    ASSERT_EQ(preds.size(), 2u);
    EXPECT_EQ(preds[0], 0u);
    EXPECT_EQ(preds[1], 1u);
  }
  const auto dpreds = frontier.preds(d);
  ASSERT_EQ(dpreds.size(), 3u);
  EXPECT_EQ(dpreds[2], c);
  // reset() starts a clean window.
  frontier.reset(pes, ctx);
  EXPECT_EQ(frontier.size(), 0u);
  EXPECT_EQ(frontier.pred_set_count(), 0u);
}

TEST(HeftLa, ReadyOnlyWindowMatchesHeftRt) {
  const auto platform = test_platform();
  const ScheduleContext ctx{.now = 0.0, .costs = &platform.costs};
  std::vector<ReadyTask> ready;
  for (std::uint64_t i = 0; i < 12; ++i) {
    ready.push_back(fft_task(i, 10.0 - static_cast<double>(i)));
  }
  for (std::uint64_t i = 12; i < 16; ++i) {
    ready.push_back(generic_task(i, 20.0 - static_cast<double>(i)));
  }

  auto rt_pes = pe_states(platform);
  HeftRtScheduler rt;
  const ScheduleResult rt_result = rt.schedule(ready, rt_pes, ctx);

  auto la_pes = pe_states(platform);
  Frontier frontier;
  frontier.reset(la_pes, ctx);
  for (const ReadyTask& t : ready) frontier.add_ready(t);
  HeftLaScheduler la;
  const FrontierResult la_result = la.schedule_window(frontier);

  // A window with no lookahead portion is a classic round: identical
  // placements, identical comparison accounting, no reservations.
  EXPECT_TRUE(la_result.reservations.empty());
  EXPECT_EQ(la_result.comparisons, rt_result.comparisons);
  ASSERT_EQ(la_result.assignments.size(), rt_result.assignments.size());
  for (std::size_t i = 0; i < rt_result.assignments.size(); ++i) {
    EXPECT_EQ(la_result.assignments[i].queue_index,
              rt_result.assignments[i].queue_index);
    EXPECT_EQ(la_result.assignments[i].pe_index,
              rt_result.assignments[i].pe_index);
  }
  for (std::size_t i = 0; i < rt_pes.size(); ++i) {
    EXPECT_DOUBLE_EQ(la_pes[i].available_time, rt_pes[i].available_time);
  }
}

/// Emulates the classic per-readiness scheduling of a diamond DAG with
/// HEFT_RT: each level becomes ready only when the previous level finished,
/// and each round sees only that level.
double heft_rt_diamond_makespan(const platform::PlatformConfig& platform) {
  auto pes = pe_states(platform);
  HeftRtScheduler rt;
  double now = 0.0;
  const auto run_level = [&](std::vector<ReadyTask> level) {
    const ScheduleContext ctx{.now = now, .costs = &platform.costs};
    rt.schedule(level, pes, ctx);
    double level_finish = now;
    for (const PeState& pe : pes) {
      level_finish = std::max(level_finish, pe.available_time);
    }
    now = level_finish;
  };
  run_level({fft_task(1, 3.0)});
  run_level({fft_task(2, 2.0), fft_task(3, 2.0), fft_task(4, 2.0),
             fft_task(5, 2.0)});
  run_level({generic_task(6, 1.0)});
  return now;
}

TEST(HeftLa, DiamondDagMakespanNoWorseThanHeftRt) {
  const auto platform = test_platform();
  const double rt_makespan = heft_rt_diamond_makespan(platform);

  auto pes = pe_states(platform);
  const ScheduleContext ctx{.now = 0.0, .costs = &platform.costs};
  Frontier frontier;
  frontier.reset(pes, ctx);
  frontier.add_ready(fft_task(1, 3.0));
  const std::size_t root[] = {0};
  const std::uint32_t l1 = frontier.stage_preds(root);
  for (std::uint64_t k = 2; k <= 5; ++k) {
    frontier.add_lookahead_staged(fft_task(k, 2.0), 1, l1);
  }
  const std::size_t mids[] = {1, 2, 3, 4};
  const std::uint32_t l2 = frontier.stage_preds(mids);
  frontier.add_lookahead_staged(generic_task(6, 1.0), 2, l2);

  HeftLaScheduler la;
  const FrontierResult result = la.schedule_window(frontier);
  ASSERT_EQ(result.assignments.size(), 1u);
  ASSERT_EQ(result.reservations.size(), 5u);
  double la_makespan = 0.0;
  for (const PeState& pe : pes) {
    la_makespan = std::max(la_makespan, pe.available_time);
  }
  for (const Reservation& r : result.reservations) {
    EXPECT_GE(r.predicted_start, 0.0);
    EXPECT_GT(r.predicted_finish, r.predicted_start);
    la_makespan = std::max(la_makespan, r.predicted_finish);
  }
  // Whole-window placement sees the successor levels the per-readiness
  // baseline cannot, so its predicted diamond makespan never loses.
  EXPECT_LE(la_makespan, rt_makespan * (1.0 + 1e-9));
}

sim::SimConfig dag_config(const std::string& scheduler) {
  sim::SimConfig config;
  config.platform = platform::zcu102(3, 2, 0);
  config.scheduler = scheduler;
  config.model = sim::ProgrammingModel::kDagBased;
  return config;
}

std::vector<sim::Arrival> pd_arrivals(const sim::SimApp& pd) {
  return {{&pd, 0.0}, {&pd, 1e-3}, {&pd, 2e-3}};
}

TEST(SimLookahead, ReservationsHonoredAndWorkConserved) {
  const sim::SimApp pd = sim::make_pulse_doppler_model();
  const auto arrivals = pd_arrivals(pd);
  const auto rt = sim::simulate(dag_config("HEFT_RT"), arrivals);
  const auto la = sim::simulate(dag_config("HEFT_LA"), arrivals);
  ASSERT_TRUE(rt.ok()) << rt.status().to_string();
  ASSERT_TRUE(la.ok()) << la.status().to_string();
  // Same work either way; lookahead only changes when decisions happen.
  EXPECT_EQ(la->apps, rt->apps);
  EXPECT_EQ(la->tasks_executed, rt->tasks_executed);
  // Reservations fire (successors skip rounds) and none go stale without
  // faults or cost-table swaps.
  EXPECT_GT(la->reservation_hits, 0u);
  EXPECT_EQ(la->reservation_stale, 0u);
  EXPECT_LT(la->sched_rounds, rt->sched_rounds);
  // Classic heuristics never produce reservations.
  EXPECT_EQ(rt->reservation_hits, 0u);
  // The decision batching must not cost throughput.
  EXPECT_LE(la->makespan, rt->makespan * 1.05);
}

TEST(SimLookahead, DepthZeroDisablesReservations) {
  const sim::SimApp pd = sim::make_pulse_doppler_model();
  const auto arrivals = pd_arrivals(pd);
  sim::SimConfig config = dag_config("HEFT_LA");
  config.lookahead_depth = 0;
  const auto metrics = sim::simulate(config, arrivals);
  ASSERT_TRUE(metrics.ok()) << metrics.status().to_string();
  EXPECT_EQ(metrics->reservation_hits, 0u);
  EXPECT_EQ(metrics->reservation_stale, 0u);
  const auto full = sim::simulate(dag_config("HEFT_LA"), arrivals);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(metrics->tasks_executed, full->tasks_executed);
}

TEST(SimLookahead, QuarantineInvalidatesPendingReservations) {
  const sim::SimApp pd = sim::make_pulse_doppler_model();
  const auto arrivals = pd_arrivals(pd);
  sim::SimConfig config = dag_config("HEFT_LA");
  // Both FFT accelerators fail hard and quarantine quickly, while
  // reservations targeting them are still pending — the staleness check
  // must return those tasks to the normal ready path, not dispatch them
  // onto a quarantined PE.
  config.faults.per_pe["fft0"] = platform::FaultSpec{.fail_prob = 0.9};
  config.faults.per_pe["fft1"] = platform::FaultSpec{.fail_prob = 0.9};
  config.faults.policy.max_retries = 8;
  config.faults.policy.quarantine_threshold = 2;
  config.faults.policy.probe_period_s = 1.0;  // no reinstatement mid-run
  const auto metrics = sim::simulate(config, arrivals);
  ASSERT_TRUE(metrics.ok()) << metrics.status().to_string();
  EXPECT_GT(metrics->pes_quarantined, 0u);
  EXPECT_GT(metrics->reservation_stale, 0u);
  // Stale reservations fall back to normal rounds; the workload still
  // completes (retries may lose tasks, but apps all terminate).
  EXPECT_EQ(metrics->apps, 3u);
}

TEST(SimLookahead, DeterministicAcrossSweepParallelism) {
  // The fig10 scenario's 16-PE point, shrunk for test time. Running the
  // same compiled scenario serially and from four concurrent threads must
  // produce bit-identical summaries — the property that makes the golden
  // band gate independent of cedr_sweep's -j level.
  constexpr const char* kText = R"(
name = "lookahead_determinism"
seed = 7
trials = 2
scheduler = "HEFT_LA"
model = "dag"

[platform]
preset = "zcu102"
cpus = 4
ffts = 2
mmults = 2

[arrival]
process = "periodic"
rate_mbps = 500.0
jitter = 0.2

[[app]]
kind = "pulse_doppler"
instances = 3

[[app]]
kind = "wifi_tx"
instances = 2
)";
  auto scenario = scenario::parse_scenario(kText);
  ASSERT_TRUE(scenario.ok()) << scenario.status().to_string();
  auto compiled = scenario::compile_scenario(*scenario);
  ASSERT_TRUE(compiled.ok()) << compiled.status().to_string();
  auto serial = scenario::run_scenario(*compiled);
  ASSERT_TRUE(serial.ok()) << serial.status().to_string();
  EXPECT_GT(serial->summary.at("reservation_hits"), 0.0);

  std::vector<scenario::MetricSummary> concurrent(4);
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < concurrent.size(); ++t) {
    pool.emplace_back([&, t] {
      auto r = scenario::run_scenario(*compiled);
      if (r.ok()) concurrent[t] = r->summary;
    });
  }
  for (auto& t : pool) t.join();
  for (const scenario::MetricSummary& summary : concurrent) {
    EXPECT_EQ(summary, serial->summary);
  }
}

TEST(RrFastPath, DirectPathMatchesCandidateViewPath) {
  // RR's span overload skips CandidateView construction (the ~1 µs it
  // costs buys nothing for a cost-oblivious policy). Both paths must stay
  // bit-identical: same placements, same cursor walk, same probe charges.
  const auto platform = test_platform();
  const ScheduleContext ctx{.now = 0.0, .costs = &platform.costs};
  std::vector<ReadyTask> ready;
  for (std::uint64_t i = 0; i < 24; ++i) {
    ready.push_back(i % 3 == 0 ? generic_task(i, 1.0) : fft_task(i, 1.0));
  }
  auto direct_pes = pe_states(platform);
  RoundRobinScheduler direct;
  const ScheduleResult direct_result = direct.schedule(ready, direct_pes, ctx);

  auto view_pes = pe_states(platform);
  RoundRobinScheduler via_view;
  thread_local CandidateView view;
  view.reset(ready, view_pes, ctx);
  const ScheduleResult view_result = via_view.schedule(view);

  EXPECT_EQ(direct_result.comparisons, view_result.comparisons);
  ASSERT_EQ(direct_result.assignments.size(), view_result.assignments.size());
  for (std::size_t i = 0; i < direct_result.assignments.size(); ++i) {
    EXPECT_EQ(direct_result.assignments[i].queue_index,
              view_result.assignments[i].queue_index);
    EXPECT_EQ(direct_result.assignments[i].pe_index,
              view_result.assignments[i].pe_index);
  }
  for (std::size_t i = 0; i < direct_pes.size(); ++i) {
    EXPECT_DOUBLE_EQ(direct_pes[i].available_time,
                     view_pes[i].available_time);
  }
}

}  // namespace
}  // namespace cedr::sched
