// Tests for the platform model: PE support matrix, cost model, presets,
// JSON round-trips and the emulated MMIO devices.
#include <gtest/gtest.h>

#include "cedr/common/rng.h"
#include "cedr/kernels/fft.h"
#include "cedr/kernels/mmult.h"
#include "cedr/kernels/zip.h"
#include "cedr/platform/mmio_device.h"
#include "cedr/platform/platform.h"

namespace cedr::platform {
namespace {

TEST(KernelId, NamesRoundTrip) {
  for (std::size_t k = 0; k < kNumKernelIds; ++k) {
    const auto id = static_cast<KernelId>(k);
    const auto back = kernel_from_name(kernel_name(id));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, id);
  }
  EXPECT_FALSE(kernel_from_name("NOPE").has_value());
}

TEST(PeSupport, CpuRunsEverything) {
  for (std::size_t k = 0; k < kNumKernelIds; ++k) {
    EXPECT_TRUE(pe_class_supports(PeClass::kCpu, static_cast<KernelId>(k)));
  }
}

TEST(PeSupport, AcceleratorsAreFunctionSpecific) {
  EXPECT_TRUE(pe_class_supports(PeClass::kFftAccel, KernelId::kFft));
  EXPECT_TRUE(pe_class_supports(PeClass::kFftAccel, KernelId::kIfft));
  EXPECT_FALSE(pe_class_supports(PeClass::kFftAccel, KernelId::kZip));
  EXPECT_FALSE(pe_class_supports(PeClass::kFftAccel, KernelId::kGeneric));
  EXPECT_TRUE(pe_class_supports(PeClass::kMmultAccel, KernelId::kMmult));
  EXPECT_FALSE(pe_class_supports(PeClass::kMmultAccel, KernelId::kFft));
  // The Jetson GPU hosts FFT and ZIP CUDA kernels (paper §III).
  EXPECT_TRUE(pe_class_supports(PeClass::kGpu, KernelId::kFft));
  EXPECT_TRUE(pe_class_supports(PeClass::kGpu, KernelId::kZip));
  EXPECT_FALSE(pe_class_supports(PeClass::kGpu, KernelId::kMmult));
}

TEST(CostModel, PolynomialEvaluation) {
  KernelCost cost{.fixed_s = 1.0, .per_point_s = 2.0, .per_nlogn_s = 3.0};
  // n=4: 1 + 2*4 + 3*4*2 = 33
  EXPECT_DOUBLE_EQ(cost.eval(4), 33.0);
  EXPECT_DOUBLE_EQ(cost.eval(1), 3.0);  // log term vanishes at n=1
}

TEST(CostModel, UnsupportedPairingIsInfinite) {
  CostModel model;
  EXPECT_TRUE(std::isinf(
      model.estimate(KernelId::kGeneric, PeClass::kFftAccel, 100, 0)));
}

TEST(CostModel, TransferAddsOnlyForAccelerators) {
  CostModel model;
  model.set(KernelId::kFft, PeClass::kCpu, {.fixed_s = 1.0});
  model.set(KernelId::kFft, PeClass::kFftAccel, {.fixed_s = 1.0});
  model.set_transfer(PeClass::kFftAccel, /*seconds_per_byte=*/0.5,
                     /*fixed_s=*/2.0);
  EXPECT_DOUBLE_EQ(model.estimate(KernelId::kFft, PeClass::kCpu, 8, 100), 1.0);
  EXPECT_DOUBLE_EQ(model.estimate(KernelId::kFft, PeClass::kFftAccel, 8, 100),
                   1.0 + 2.0 + 50.0);
}

TEST(CostModel, JsonRoundTrip) {
  const PlatformConfig zcu = zcu102(3, 2, 1);
  auto parsed = CostModel::from_json(zcu.costs.to_json());
  ASSERT_TRUE(parsed.ok());
  for (std::size_t k = 0; k < kNumKernelIds; ++k) {
    for (std::size_t c = 0; c < kNumPeClasses; ++c) {
      const auto kernel = static_cast<KernelId>(k);
      const auto cls = static_cast<PeClass>(c);
      EXPECT_DOUBLE_EQ(parsed->estimate(kernel, cls, 256, 2048),
                       zcu.costs.estimate(kernel, cls, 256, 2048));
    }
  }
}

TEST(CostModel, FromJsonRejectsUnknownKernelName) {
  auto doc = json::parse(R"({"kernels": {"FFTT": {"cpu": {"fixed_s": 1.0}}}})");
  ASSERT_TRUE(doc.ok());
  auto parsed = CostModel::from_json(*doc);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  // The error must name the offending key, not silently skip it.
  EXPECT_NE(parsed.status().to_string().find("FFTT"), std::string::npos)
      << parsed.status().to_string();
}

TEST(CostModel, FromJsonRejectsUnknownPeClassName) {
  auto doc = json::parse(R"({"kernels": {"FFT": {"cppu": {"fixed_s": 1.0}}}})");
  ASSERT_TRUE(doc.ok());
  auto parsed = CostModel::from_json(*doc);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().to_string().find("cppu"), std::string::npos)
      << parsed.status().to_string();

  auto transfers = json::parse(R"({"transfers": {"fftt": {"fixed_s": 1.0}}})");
  ASSERT_TRUE(transfers.ok());
  auto parsed2 = CostModel::from_json(*transfers);
  ASSERT_FALSE(parsed2.ok());
  EXPECT_NE(parsed2.status().to_string().find("fftt"), std::string::npos);
}

TEST(CostModel, FromJsonRejectsNegativeCoefficients) {
  auto doc = json::parse(
      R"({"kernels": {"FFT": {"cpu": {"fixed_s": 1.0, "per_point_s": -2.0}}}})");
  ASSERT_TRUE(doc.ok());
  auto parsed = CostModel::from_json(*doc);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().to_string().find("per_point_s"), std::string::npos)
      << parsed.status().to_string();

  auto transfers =
      json::parse(R"({"transfers": {"fft": {"per_byte_s": -1e-9}}})");
  ASSERT_TRUE(transfers.ok());
  EXPECT_FALSE(CostModel::from_json(*transfers).ok());
}

TEST(CostModel, FromJsonAcceptsValidDocument) {
  auto doc = json::parse(
      R"({"kernels": {"FFT": {"cpu": {"fixed_s": 1.0, "per_point_s": 2.0}}},
          "transfers": {"fft": {"per_byte_s": 1e-9, "fixed_s": 1e-6}}})");
  ASSERT_TRUE(doc.ok());
  auto parsed = CostModel::from_json(*doc);
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->get(KernelId::kFft, PeClass::kCpu).fixed_s, 1.0);
  EXPECT_DOUBLE_EQ(parsed->get(KernelId::kFft, PeClass::kCpu).per_point_s, 2.0);
}

TEST(PeClassNames, RoundTrip) {
  for (std::size_t c = 0; c < kNumPeClasses; ++c) {
    const auto cls = static_cast<PeClass>(c);
    const auto back = pe_class_from_name(pe_class_name(cls));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, cls);
  }
  EXPECT_FALSE(pe_class_from_name("not-a-class").has_value());
  EXPECT_FALSE(pe_class_from_name("").has_value());
}

TEST(Platform, Zcu102Preset) {
  const PlatformConfig p = zcu102(3, 8, 1);
  EXPECT_TRUE(p.validate().ok());
  EXPECT_EQ(p.count(PeClass::kCpu), 3u);
  EXPECT_EQ(p.count(PeClass::kFftAccel), 8u);
  EXPECT_EQ(p.count(PeClass::kMmultAccel), 1u);
  EXPECT_EQ(p.worker_cores, 3u);
  EXPECT_EQ(p.total_app_cores, 3u);
}

TEST(Platform, JetsonPresetHasSevenAppCores) {
  const PlatformConfig p = jetson(3, 1);
  EXPECT_TRUE(p.validate().ok());
  EXPECT_EQ(p.count(PeClass::kCpu), 3u);
  EXPECT_EQ(p.count(PeClass::kGpu), 1u);
  // OS spreads app threads across all 7 non-runtime cores (paper §IV-C).
  EXPECT_EQ(p.total_app_cores, 7u);
}

TEST(Platform, ValidationCatchesBadConfigs) {
  PlatformConfig p = zcu102(3, 1, 0);
  p.pes[1].name = p.pes[0].name;  // duplicate
  EXPECT_FALSE(p.validate().ok());

  PlatformConfig q = zcu102(3, 0, 0);
  q.worker_cores = 0;
  EXPECT_FALSE(q.validate().ok());

  PlatformConfig r = zcu102(3, 0, 0);
  r.pes.clear();
  EXPECT_FALSE(r.validate().ok());
}

TEST(Platform, JsonRoundTrip) {
  const PlatformConfig p = jetson(5, 1);
  auto parsed = PlatformConfig::from_json(p.to_json());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->name, "jetson");
  EXPECT_EQ(parsed->pes.size(), p.pes.size());
  EXPECT_EQ(parsed->worker_cores, p.worker_cores);
  EXPECT_EQ(parsed->total_app_cores, p.total_app_cores);
  for (std::size_t i = 0; i < p.pes.size(); ++i) {
    EXPECT_EQ(parsed->pes[i].name, p.pes[i].name);
    EXPECT_EQ(parsed->pes[i].cls, p.pes[i].cls);
  }
}

// ---- Emulated MMIO devices ------------------------------------------------

template <typename T>
std::span<const std::uint8_t> bytes_of(const std::vector<T>& v) {
  return {reinterpret_cast<const std::uint8_t*>(v.data()),
          v.size() * sizeof(T)};
}

template <typename T>
std::span<std::uint8_t> writable_bytes_of(std::vector<T>& v) {
  return {reinterpret_cast<std::uint8_t*>(v.data()), v.size() * sizeof(T)};
}

std::uint32_t poll(MmioDevice& device) {
  std::uint32_t status = device.read_reg(DeviceReg::kStatus);
  int spins = 0;
  while (status == kStatusBusy && spins++ < 100000) {
    status = device.read_reg(DeviceReg::kStatus);
  }
  return status;
}

TEST(FftDevice, MatchesCpuKernelThroughMmioProtocol) {
  constexpr std::size_t kN = 256;
  Rng rng(1);
  std::vector<cfloat> input(kN);
  for (auto& v : input) {
    v = cfloat(static_cast<float>(rng.uniform(-1, 1)),
               static_cast<float>(rng.uniform(-1, 1)));
  }
  FftDevice device;
  ASSERT_TRUE(device.dma_write_a(bytes_of(input)).ok());
  ASSERT_TRUE(device.write_reg(DeviceReg::kSize, kN).ok());
  ASSERT_TRUE(device.write_reg(DeviceReg::kMode, 0).ok());
  ASSERT_TRUE(device.write_reg(DeviceReg::kControl, kCmdStart).ok());
  EXPECT_EQ(poll(device), kStatusDone);
  std::vector<cfloat> output(kN);
  ASSERT_TRUE(device.dma_read(writable_bytes_of(output)).ok());

  std::vector<cfloat> expected(kN);
  ASSERT_TRUE(kernels::fft(input, expected, false).ok());
  EXPECT_LT(max_abs_diff(output, expected), 1e-6f);
}

TEST(FftDevice, InverseModeAndReArm) {
  constexpr std::size_t kN = 64;
  std::vector<cfloat> input(kN, cfloat(1.0f, 0.0f));
  FftDevice device;
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(device.dma_write_a(bytes_of(input)).ok());
    ASSERT_TRUE(device.write_reg(DeviceReg::kSize, kN).ok());
    ASSERT_TRUE(device.write_reg(DeviceReg::kMode, 1).ok());  // inverse
    ASSERT_TRUE(device.write_reg(DeviceReg::kControl, kCmdStart).ok());
    EXPECT_EQ(poll(device), kStatusDone);
    std::vector<cfloat> output(kN);
    ASSERT_TRUE(device.dma_read(writable_bytes_of(output)).ok());
    // IFFT of constant 1 -> delta/N scaled: output[0] == 1, rest 0.
    EXPECT_NEAR(output[0].real(), 1.0f, 1e-5f);
    EXPECT_NEAR(std::abs(output[5]), 0.0f, 1e-5f);
    // dma_read re-armed the device; status back to idle.
    EXPECT_EQ(device.read_reg(DeviceReg::kStatus), kStatusIdle);
  }
}

TEST(FftDevice, RejectsOversizeTransforms) {
  // The paper's IP supports up to 2048-point FFTs.
  std::vector<cfloat> input(4096);
  FftDevice device;
  ASSERT_TRUE(device.dma_write_a(bytes_of(input)).ok());
  ASSERT_TRUE(device.write_reg(DeviceReg::kSize, 4096).ok());
  ASSERT_TRUE(device.write_reg(DeviceReg::kControl, kCmdStart).ok());
  EXPECT_EQ(device.read_reg(DeviceReg::kStatus), kStatusError);
}

TEST(FftDevice, RejectsOperandSizeMismatch) {
  std::vector<cfloat> input(32);
  FftDevice device;
  ASSERT_TRUE(device.dma_write_a(bytes_of(input)).ok());
  ASSERT_TRUE(device.write_reg(DeviceReg::kSize, 64).ok());  // wrong
  ASSERT_TRUE(device.write_reg(DeviceReg::kControl, kCmdStart).ok());
  EXPECT_EQ(device.read_reg(DeviceReg::kStatus), kStatusError);
}

TEST(FftDevice, DmaReadBeforeCompletionFails) {
  FftDevice device;
  std::vector<cfloat> out(8);
  EXPECT_EQ(device.dma_read(writable_bytes_of(out)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(FftDevice, StatusRegisterIsReadOnly) {
  FftDevice device;
  EXPECT_EQ(device.write_reg(DeviceReg::kStatus, 1).code(),
            StatusCode::kInvalidArgument);
}

TEST(FftDevice, LatencyScalesWithSize) {
  FftDevice device;
  EXPECT_GE(device.latency_polls(2048), device.latency_polls(256));
  EXPECT_GE(device.latency_polls(16), 1u);
}

TEST(ZipDevice, MatchesCpuKernel) {
  constexpr std::size_t kN = 128;
  Rng rng(2);
  std::vector<cfloat> a(kN), b(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    a[i] = cfloat(static_cast<float>(rng.uniform(-1, 1)), 0.5f);
    b[i] = cfloat(0.25f, static_cast<float>(rng.uniform(-1, 1)));
  }
  ZipDevice device;
  ASSERT_TRUE(device.dma_write_a(bytes_of(a)).ok());
  ASSERT_TRUE(device.dma_write_b(bytes_of(b)).ok());
  ASSERT_TRUE(device.write_reg(DeviceReg::kSize, kN).ok());
  ASSERT_TRUE(device.write_reg(
      DeviceReg::kMode,
      static_cast<std::uint32_t>(kernels::ZipOp::kConjugateMultiply)).ok());
  ASSERT_TRUE(device.write_reg(DeviceReg::kControl, kCmdStart).ok());
  EXPECT_EQ(poll(device), kStatusDone);
  std::vector<cfloat> out(kN);
  ASSERT_TRUE(device.dma_read(writable_bytes_of(out)).ok());
  std::vector<cfloat> expected(kN);
  ASSERT_TRUE(
      kernels::zip(a, b, expected, kernels::ZipOp::kConjugateMultiply).ok());
  EXPECT_LT(max_abs_diff(out, expected), 1e-6f);
}

TEST(ZipDevice, RejectsBadMode) {
  std::vector<cfloat> a(8), b(8);
  ZipDevice device;
  ASSERT_TRUE(device.dma_write_a(bytes_of(a)).ok());
  ASSERT_TRUE(device.dma_write_b(bytes_of(b)).ok());
  ASSERT_TRUE(device.write_reg(DeviceReg::kSize, 8).ok());
  ASSERT_TRUE(device.write_reg(DeviceReg::kMode, 17).ok());
  ASSERT_TRUE(device.write_reg(DeviceReg::kControl, kCmdStart).ok());
  EXPECT_EQ(device.read_reg(DeviceReg::kStatus), kStatusError);
}

TEST(MmultDevice, MatchesCpuKernel) {
  constexpr std::size_t kM = 7, kK = 5, kN = 9;
  Rng rng(3);
  std::vector<float> a(kM * kK), b(kK * kN);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  MmultDevice device;
  ASSERT_TRUE(device.dma_write_a(bytes_of(a)).ok());
  ASSERT_TRUE(device.dma_write_b(bytes_of(b)).ok());
  ASSERT_TRUE(device.write_reg(DeviceReg::kSize, kM).ok());
  ASSERT_TRUE(device.write_reg(DeviceReg::kSizeAux, kK).ok());
  ASSERT_TRUE(device.write_reg(DeviceReg::kSizeAux2, kN).ok());
  ASSERT_TRUE(device.write_reg(DeviceReg::kControl, kCmdStart).ok());
  EXPECT_EQ(poll(device), kStatusDone);
  std::vector<float> out(kM * kN);
  ASSERT_TRUE(device.dma_read(writable_bytes_of(out)).ok());
  std::vector<float> expected(kM * kN);
  ASSERT_TRUE(kernels::mmult(a, b, expected, kM, kK, kN).ok());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i], expected[i], 1e-4f);
  }
}

TEST(MmioDevice, ConfigRegistersReadBack) {
  FftDevice device;
  ASSERT_TRUE(device.write_reg(DeviceReg::kSize, 512).ok());
  ASSERT_TRUE(device.write_reg(DeviceReg::kMode, 1).ok());
  EXPECT_EQ(device.read_reg(DeviceReg::kSize), 512u);
  EXPECT_EQ(device.read_reg(DeviceReg::kMode), 1u);
}

}  // namespace
}  // namespace cedr::platform
