// Tests for offline trace analysis (trace::Report).
#include <gtest/gtest.h>

#include "cedr/cedr.h"
#include "cedr/runtime/runtime.h"
#include "cedr/trace/report.h"

namespace cedr::trace {
namespace {

void fill_sample(TraceLog& log) {
  log.add_app(AppRecord{.app_instance_id = 1,
                        .app_name = "pd",
                        .arrival_time = 0.0,
                        .launch_time = 0.0,
                        .completion_time = 0.4});
  log.add_app(AppRecord{.app_instance_id = 2,
                        .app_name = "tx",
                        .arrival_time = 0.1,
                        .launch_time = 0.1,
                        .completion_time = 0.3});
  log.add_task(TaskRecord{.app_instance_id = 1,
                          .task_id = 10,
                          .kernel_name = "FFT",
                          .pe_name = "cpu0",
                          .enqueue_time = 0.00,
                          .start_time = 0.05,
                          .end_time = 0.15});
  log.add_task(TaskRecord{.app_instance_id = 1,
                          .task_id = 11,
                          .kernel_name = "FFT",
                          .pe_name = "fft0",
                          .enqueue_time = 0.10,
                          .start_time = 0.20,
                          .end_time = 0.40});
  log.add_task(TaskRecord{.app_instance_id = 2,
                          .task_id = 12,
                          .kernel_name = "ZIP",
                          .pe_name = "cpu0",
                          .enqueue_time = 0.15,
                          .start_time = 0.20,
                          .end_time = 0.30});
  log.add_sched(SchedRecord{.time = 0.01, .ready_tasks = 3, .assigned = 3,
                            .decision_time = 0.002});
  log.add_sched(SchedRecord{.time = 0.2, .ready_tasks = 7, .assigned = 7,
                            .decision_time = 0.004});
}

TEST(Report, SummarizesInMemoryLog) {
  TraceLog log;
  fill_sample(log);
  const Report report = summarize(log);
  EXPECT_DOUBLE_EQ(report.makespan, 0.4);
  ASSERT_EQ(report.apps.size(), 2u);
  EXPECT_EQ(report.apps[0].name, "pd");  // sorted by arrival
  EXPECT_EQ(report.apps[0].tasks, 2u);
  EXPECT_EQ(report.apps[1].tasks, 1u);
  EXPECT_NEAR(report.avg_execution_time, (0.4 + 0.2) / 2, 1e-12);
  ASSERT_EQ(report.pes.size(), 2u);
  EXPECT_EQ(report.pes[0].name, "cpu0");
  EXPECT_EQ(report.pes[0].tasks, 2u);
  EXPECT_NEAR(report.pes[0].busy_time, 0.20, 1e-12);
  EXPECT_NEAR(report.pes[0].utilization, 0.5, 1e-12);
  EXPECT_EQ(report.sched_rounds, 2u);
  EXPECT_NEAR(report.total_sched_time, 0.006, 1e-12);
  EXPECT_EQ(report.max_ready_queue, 7u);
  EXPECT_NEAR(report.queue_delay_mean, (0.05 + 0.10 + 0.05) / 3, 1e-12);
  EXPECT_NEAR(report.queue_delay_max, 0.10, 1e-12);
  // Streaming quantiles from the log-linear histogram: within ~3 % of the
  // exact order statistics (delays 50/50/100 ms, services 100/100/200 ms).
  EXPECT_NEAR(report.queue_delay_p50, 0.05, 0.05 * 0.04);
  EXPECT_NEAR(report.queue_delay_p99, 0.10, 0.10 * 0.04);
  EXPECT_LE(report.queue_delay_p50, report.queue_delay_p95);
  EXPECT_LE(report.queue_delay_p95, report.queue_delay_p99);
  EXPECT_NEAR(report.service_time_mean, (0.10 + 0.20 + 0.10) / 3, 1e-12);
  EXPECT_NEAR(report.service_time_p50, 0.10, 0.10 * 0.04);
  EXPECT_NEAR(report.service_time_p99, 0.20, 0.20 * 0.04);
  EXPECT_LE(report.service_time_p50, report.service_time_p99);
}

TEST(Report, JsonRoundTripMatchesInMemory) {
  TraceLog log;
  fill_sample(log);
  const Report direct = summarize(log);
  auto from_json = summarize_json(log.to_json());
  ASSERT_TRUE(from_json.ok());
  EXPECT_DOUBLE_EQ(from_json->makespan, direct.makespan);
  EXPECT_DOUBLE_EQ(from_json->avg_execution_time, direct.avg_execution_time);
  EXPECT_EQ(from_json->apps.size(), direct.apps.size());
  EXPECT_EQ(from_json->pes.size(), direct.pes.size());
  EXPECT_DOUBLE_EQ(from_json->queue_delay_mean, direct.queue_delay_mean);
  EXPECT_EQ(from_json->max_ready_queue, direct.max_ready_queue);
}

TEST(Report, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cedr_report_test.json";
  TraceLog log;
  fill_sample(log);
  ASSERT_TRUE(log.write_json(path).ok());
  auto report = summarize_file(path);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->apps.size(), 2u);
  EXPECT_EQ(summarize_file("/nope.json").status().code(),
            StatusCode::kNotFound);
}

TEST(Report, RejectsMalformedDocuments) {
  EXPECT_FALSE(summarize_json(json::Value(1)).ok());
  EXPECT_FALSE(summarize_json(json::Object{}).ok());
  EXPECT_FALSE(summarize_json(json::Object{
                   {"tasks", json::Value(json::Array{})},
                   {"apps", json::Value(3)},
                   {"sched_rounds", json::Value(json::Array{})}})
                   .ok());
}

TEST(Report, TextRenderingContainsKeyNumbers) {
  TraceLog log;
  fill_sample(log);
  const std::string text = render_text(summarize(log));
  EXPECT_NE(text.find("makespan"), std::string::npos);
  EXPECT_NE(text.find("pd"), std::string::npos);
  EXPECT_NE(text.find("fft0"), std::string::npos);
  EXPECT_NE(text.find("utilization"), std::string::npos);
  EXPECT_NE(text.find("queue delay pcts"), std::string::npos);
  EXPECT_NE(text.find("task service time"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
}

TEST(Report, ChromeExportFromTraceJson) {
  TraceLog log;
  fill_sample(log);
  auto chrome = chrome_trace_from_trace_json(log.to_json());
  ASSERT_TRUE(chrome.ok());
  const json::Value* rows = chrome->find("traceEvents");
  ASSERT_NE(rows, nullptr);
  std::size_t spans = 0, flows = 0, instants = 0;
  double last_ts = -1.0;
  for (const json::Value& row : rows->as_array()) {
    const std::string ph = row.get_string("ph", "");
    if (ph == "M") continue;
    const double ts = row.get_double("ts", -1.0);
    EXPECT_GE(ts, last_ts);  // exporter sorts by timestamp
    last_ts = ts;
    if (ph == "X") ++spans;
    if (ph == "s" || ph == "f") ++flows;
    if (ph == "i") ++instants;
  }
  // 3 task spans + 2 sched rounds, a begin+end flow pair per task, and an
  // arrival + completion instant per app.
  EXPECT_EQ(spans, 5u);
  EXPECT_EQ(flows, 6u);
  EXPECT_EQ(instants, 4u);
  // Malformed input is rejected, not crashed on.
  EXPECT_FALSE(chrome_trace_from_trace_json(json::Value(1)).ok());
}

TEST(Gantt, RendersRowsPerPe) {
  TraceLog log;
  fill_sample(log);
  const std::string gantt = render_gantt(log, 40);
  // One row per PE plus the legend line.
  EXPECT_NE(gantt.find("cpu0"), std::string::npos);
  EXPECT_NE(gantt.find("fft0"), std::string::npos);
  // App 1's tasks drawn as '1', app 2's as '2'.
  EXPECT_NE(gantt.find('1'), std::string::npos);
  EXPECT_NE(gantt.find('2'), std::string::npos);
}

TEST(Gantt, EmptyLogIsSafe) {
  TraceLog empty;
  EXPECT_EQ(render_gantt(empty, 40), "(no tasks)\n");
}

TEST(Report, EndToEndFromRuntimeTrace) {
  // Summaries computed from a real runtime trace must be self-consistent.
  rt::RuntimeConfig config;
  config.platform = platform::host(2, 1);
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  ASSERT_TRUE(runtime
                  .submit_api("probe",
                              [] {
                                std::vector<cedr_cplx> buf(128);
                                for (int i = 0; i < 8; ++i) {
                                  (void)CEDR_FFT(buf.data(), buf.data(), 128);
                                }
                              })
                  .ok());
  ASSERT_TRUE(runtime.wait_all(30.0).ok());
  EXPECT_TRUE(runtime.shutdown().ok());
  const Report report = summarize(runtime.trace_log());
  EXPECT_EQ(report.apps.size(), 1u);
  EXPECT_EQ(report.apps[0].tasks, 8u);
  double pe_tasks = 0;
  for (const auto& pe : report.pes) pe_tasks += static_cast<double>(pe.tasks);
  EXPECT_EQ(pe_tasks, 8.0);
  EXPECT_GE(report.makespan, report.avg_execution_time);
  EXPECT_GE(report.queue_delay_max, report.queue_delay_mean);
}

}  // namespace
}  // namespace cedr::trace
