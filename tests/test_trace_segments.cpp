// Tests for the continuous trace pipeline: the binary `.cbt` segment
// format, SegmentWriter rotation/retention, the SpanTracer drain cursor,
// TraceFlusher, the stitcher, and the runtime integration
// (docs/observability.md).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cedr/obs/chrome_trace.h"
#include "cedr/obs/metrics.h"
#include "cedr/obs/segment.h"
#include "cedr/obs/span.h"
#include "cedr/platform/platform.h"
#include "cedr/runtime/runtime.h"

namespace cedr::obs {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory under the gtest temp root.
std::string test_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("cbt_" + name);
  fs::remove_all(dir);
  return dir.string();
}

std::vector<SpanTracer::TicketedEvent> sample_events(std::size_t n,
                                                     std::uint64_t first = 0) {
  std::vector<SpanTracer::TicketedEvent> events;
  events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SpanTracer::TicketedEvent te;
    te.ticket = first + i;
    SpanEvent& e = te.event;
    e.kind = i % 3 == 0 ? EventKind::kComplete
                        : (i % 3 == 1 ? EventKind::kInstant
                                      : EventKind::kFlowBegin);
    e.category = i % 2 == 0 ? Category::kWorker : Category::kSched;
    e.set_name(("kernel_" + std::to_string(i % 5)).c_str());
    e.ts = 0.001 * static_cast<double>(i);
    e.dur = e.kind == EventKind::kComplete ? 0.0005 : 0.0;
    e.pid = i % 4;
    e.tid = 1 + i % 3;
    e.flow_id = e.kind == EventKind::kFlowBegin ? 100 + i : 0;
    if (i % 2 == 0) {
      e.arg0_name = "attempt";
      e.arg0 = static_cast<double>(i);
    }
    if (i % 4 == 0) {
      e.arg1_name = "bytes";
      e.arg1 = 4096.0 + static_cast<double>(i);
    }
    events.push_back(te);
  }
  return events;
}

std::vector<TrackName> sample_tracks() {
  return {
      {.pid = 0, .is_process = true, .name = "cedr runtime"},
      {.pid = 0, .tid = 0, .name = "main loop"},
      {.pid = 0, .tid = 1, .name = "cpu0"},
      {.pid = 1, .is_process = true, .name = "radar #0"},
  };
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

// ---- format round trip ------------------------------------------------------

TEST(SegmentFormat, RoundTripPreservesEverything) {
  const std::string dir = test_dir("roundtrip");
  fs::create_directories(dir);
  const std::string path = dir + "/trace-000007.cbt";
  const auto events = sample_events(64, /*first=*/1000);
  const auto tracks = sample_tracks();
  ASSERT_TRUE(write_segment_file(path, 7, 13, tracks, events).ok());

  auto parsed = read_segment(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->seq, 7u);
  EXPECT_EQ(parsed->first_ticket, 1000u);
  EXPECT_EQ(parsed->dropped_since_prev, 13u);
  ASSERT_EQ(parsed->tracks.size(), tracks.size());
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    EXPECT_EQ(parsed->tracks[i].pid, tracks[i].pid);
    EXPECT_EQ(parsed->tracks[i].tid, tracks[i].tid);
    EXPECT_EQ(parsed->tracks[i].is_process, tracks[i].is_process);
    EXPECT_EQ(parsed->tracks[i].name, tracks[i].name);
  }
  ASSERT_EQ(parsed->events.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    const SpanEvent& in = events[i].event;
    const SpanEvent& out = parsed->events[i].event;
    EXPECT_EQ(parsed->events[i].ticket, events[i].ticket);
    EXPECT_EQ(out.kind, in.kind);
    EXPECT_EQ(out.category, in.category);
    EXPECT_STREQ(out.name, in.name);
    // Doubles survive exactly (bit-cast encoding, no text round trip).
    EXPECT_EQ(out.ts, in.ts);
    EXPECT_EQ(out.dur, in.dur);
    EXPECT_EQ(out.pid, in.pid);
    EXPECT_EQ(out.tid, in.tid);
    EXPECT_EQ(out.flow_id, in.flow_id);
    EXPECT_EQ(out.arg0, in.arg0);
    EXPECT_EQ(out.arg1, in.arg1);
    if (in.arg0_name == nullptr) {
      EXPECT_EQ(out.arg0_name, nullptr);
    } else {
      ASSERT_NE(out.arg0_name, nullptr);
      EXPECT_STREQ(out.arg0_name, in.arg0_name);
    }
    if (in.arg1_name == nullptr) {
      EXPECT_EQ(out.arg1_name, nullptr);
    } else {
      ASSERT_NE(out.arg1_name, nullptr);
      EXPECT_STREQ(out.arg1_name, in.arg1_name);
    }
  }
}

TEST(SegmentFormat, ChromeJsonFromSegmentsMatchesDirectExport) {
  const std::string dir = test_dir("chrome_identity");
  fs::create_directories(dir);
  const auto events = sample_events(128);
  const auto tracks = sample_tracks();
  ASSERT_TRUE(
      write_segment_file(dir + "/trace-000000.cbt", 0, 0, tracks, events)
          .ok());

  std::vector<SpanEvent> raw;
  for (const auto& te : events) raw.push_back(te.event);
  const std::string direct = chrome_trace_json(raw, tracks).dump();

  auto stitched = stitch_segments({dir + "/trace-000000.cbt"});
  ASSERT_TRUE(stitched.ok());
  const std::string from_segments =
      chrome_trace_json(stitched->events, stitched->tracks).dump();
  EXPECT_EQ(from_segments, direct);
}

TEST(SegmentFormat, EncodingIsDeterministic) {
  const std::string dir = test_dir("determinism");
  fs::create_directories(dir);
  const auto events = sample_events(200);
  const auto tracks = sample_tracks();
  ASSERT_TRUE(write_segment_file(dir + "/a.cbt", 3, 5, tracks, events).ok());
  ASSERT_TRUE(write_segment_file(dir + "/b.cbt", 3, 5, tracks, events).ok());
  EXPECT_EQ(slurp(dir + "/a.cbt"), slurp(dir + "/b.cbt"));
}

// ---- corruption handling ----------------------------------------------------

TEST(SegmentFormat, CorruptCrcIsRejected) {
  const std::string dir = test_dir("corrupt");
  fs::create_directories(dir);
  const std::string path = dir + "/trace-000000.cbt";
  ASSERT_TRUE(
      write_segment_file(path, 0, 0, sample_tracks(), sample_events(16)).ok());
  auto bytes = slurp(path);
  ASSERT_GT(bytes.size(), 60u);
  bytes[bytes.size() - 1] ^= 0x5A;  // flip a payload byte
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  const auto parsed = read_segment(path);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("CRC"), std::string::npos)
      << parsed.status().to_string();
}

TEST(SegmentFormat, TruncatedFileIsRejected) {
  const std::string dir = test_dir("truncated");
  fs::create_directories(dir);
  const std::string path = dir + "/trace-000000.cbt";
  ASSERT_TRUE(
      write_segment_file(path, 0, 0, sample_tracks(), sample_events(16)).ok());
  auto bytes = slurp(path);
  // Cut mid-payload: the header's payload size no longer matches.
  bytes.resize(bytes.size() / 2);
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  const auto parsed = read_segment(path);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("truncated"), std::string::npos);

  // Cut mid-header too.
  bytes.resize(20);
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_FALSE(read_segment(path).ok());
}

TEST(SegmentFormat, BadMagicIsRejected) {
  const std::string dir = test_dir("magic");
  fs::create_directories(dir);
  const std::string path = dir + "/not_a_segment.cbt";
  std::ofstream(path, std::ios::binary) << "this is not a trace segment file "
                                        << std::string(100, 'x');
  const auto parsed = read_segment(path);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("magic"), std::string::npos);
}

// ---- drain cursor / drop accounting ----------------------------------------

TEST(SpanTracerDrain, CursorDrainsIncrementallyWithoutLoss) {
  SpanTracer tracer(64);
  for (int i = 0; i < 10; ++i) {
    tracer.instant(Category::kWorker, "a", 0, 0, 0.1 * i);
  }
  std::uint64_t cursor = 0;
  auto first = tracer.drain(cursor);
  EXPECT_EQ(first.size(), 10u);
  EXPECT_EQ(cursor, 10u);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].ticket, i);
  }
  // Nothing new: empty drain, cursor unchanged.
  EXPECT_TRUE(tracer.drain(cursor).empty());
  EXPECT_EQ(cursor, 10u);
  tracer.instant(Category::kWorker, "b", 0, 0, 2.0);
  auto second = tracer.drain(cursor);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].ticket, 10u);
  EXPECT_STREQ(second[0].event.name, "b");
  EXPECT_EQ(tracer.consume_dropped(), 0u);
}

TEST(SpanTracerDrain, OverwrittenEventsAreCountedAndConsumed) {
  SpanTracer tracer(16);  // rounds to capacity 16
  for (int i = 0; i < 50; ++i) {
    tracer.instant(Category::kWorker, "x", 0, 0, 0.01 * i);
  }
  std::uint64_t cursor = 0;
  const auto events = tracer.drain(cursor);
  // Only the ring window survives; everything older was overwritten.
  EXPECT_EQ(events.size(), tracer.capacity());
  EXPECT_EQ(events.front().ticket, 50 - tracer.capacity());
  EXPECT_EQ(cursor, 50u);
  const std::uint64_t dropped = tracer.consume_dropped();
  EXPECT_EQ(dropped, 50 - tracer.capacity());
  // consume_dropped() zeroes the counter: drops are per-segment, not
  // cumulative.
  EXPECT_EQ(tracer.consume_dropped(), 0u);
}

// ---- QuantileHistogram::snapshot_delta --------------------------------------

TEST(QuantileHistogramDelta, IndependentEpochsSeeIndependentDeltas) {
  QuantileHistogram hist;
  QuantileHistogram::Epoch a, b;
  hist.record(10.0);
  hist.record(20.0);
  const auto da1 = hist.snapshot_delta(a);
  EXPECT_EQ(da1.count, 2u);
  EXPECT_DOUBLE_EQ(da1.sum, 30.0);
  EXPECT_DOUBLE_EQ(da1.mean(), 15.0);
  hist.record(40.0);
  // Reader a sees only the new sample; reader b sees everything so far —
  // neither clobbered the other (unlike reset()).
  const auto da2 = hist.snapshot_delta(a);
  EXPECT_EQ(da2.count, 1u);
  EXPECT_DOUBLE_EQ(da2.sum, 40.0);
  const auto db = hist.snapshot_delta(b);
  EXPECT_EQ(db.count, 3u);
  EXPECT_DOUBLE_EQ(db.sum, 70.0);
  // Lifetime aggregates are untouched.
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_DOUBLE_EQ(hist.sum(), 70.0);
  // Empty delta has a defined mean.
  const auto empty = hist.snapshot_delta(a);
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
}

TEST(QuantileHistogramDelta, ResetRestartsTheEpoch) {
  QuantileHistogram hist;
  QuantileHistogram::Epoch epoch;
  hist.record(5.0);
  hist.record(5.0);
  (void)hist.snapshot_delta(epoch);
  hist.reset();
  hist.record(7.0);
  const auto delta = hist.snapshot_delta(epoch);
  EXPECT_EQ(delta.count, 1u);
  EXPECT_DOUBLE_EQ(delta.sum, 7.0);
}

// ---- SegmentWriter rotation / retention -------------------------------------

TEST(SegmentWriter, SizeRotationSplitsAndRetentionPrunes) {
  const std::string dir = test_dir("rotation");
  SegmentWriter writer(SegmentWriter::Config{
      .dir = dir,
      .max_segment_events = 10,
      .max_segment_age_s = 0.0,
      .max_segments = 3,
  });
  ASSERT_TRUE(writer.open().ok());
  // 85 events -> 8 finalized segments of 10 plus an open tail of 5; the
  // retention bound keeps only the newest 3 finalized files.
  ASSERT_TRUE(writer.append(sample_events(85), 0, sample_tracks(), 0.0).ok());
  EXPECT_EQ(writer.segments_finalized(), 8u);
  auto paths = list_segments(dir);
  ASSERT_TRUE(paths.ok());
  ASSERT_EQ(paths->size(), 4u);  // 3 retained finalized + 1 open
  auto stitched = stitch_segments(*paths);
  ASSERT_TRUE(stitched.ok());
  // Newest 3 finalized segments cover tickets 50..79, the open one 80..84.
  EXPECT_EQ(stitched->events.size(), 35u);
  EXPECT_EQ(stitched->segments.front().first_ticket, 50u);
  ASSERT_TRUE(writer.finalize(sample_tracks()).ok());
  EXPECT_EQ(writer.segments_finalized(), 9u);
  paths = list_segments(dir);
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ(paths->size(), 3u);  // retention applied to the final tail too
}

TEST(SegmentWriter, AgeRotationFinalizesOldOpenSegment) {
  const std::string dir = test_dir("age");
  SegmentWriter writer(SegmentWriter::Config{
      .dir = dir,
      .max_segment_events = 1000,
      .max_segment_age_s = 5.0,
      .max_segments = 0,
  });
  ASSERT_TRUE(writer.open().ok());
  ASSERT_TRUE(writer.append(sample_events(4), 0, sample_tracks(), 1.0).ok());
  EXPECT_EQ(writer.segments_finalized(), 0u);
  // Young: flush keeps the segment open.
  ASSERT_TRUE(
      writer.append(sample_events(4, 4), 0, sample_tracks(), 3.0).ok());
  EXPECT_EQ(writer.segments_finalized(), 0u);
  // Oldest pending event is now 5s old: rotate.
  ASSERT_TRUE(
      writer.append(sample_events(4, 8), 0, sample_tracks(), 6.0).ok());
  EXPECT_EQ(writer.segments_finalized(), 1u);
  auto paths = list_segments(dir);
  ASSERT_TRUE(paths.ok());
  auto stitched = stitch_segments(*paths);
  ASSERT_TRUE(stitched.ok());
  EXPECT_EQ(stitched->events.size(), 12u);
}

TEST(SegmentWriter, OpenResumesNumberingAfterRestart) {
  const std::string dir = test_dir("resume");
  {
    SegmentWriter writer(SegmentWriter::Config{
        .dir = dir, .max_segment_events = 5, .max_segment_age_s = 0.0});
    ASSERT_TRUE(writer.open().ok());
    ASSERT_TRUE(
        writer.append(sample_events(10), 0, sample_tracks(), 0.0).ok());
    ASSERT_TRUE(writer.finalize(sample_tracks()).ok());
  }
  SegmentWriter writer(SegmentWriter::Config{
      .dir = dir, .max_segment_events = 5, .max_segment_age_s = 0.0});
  ASSERT_TRUE(writer.open().ok());
  // Sequence numbers continue after the two existing segments.
  EXPECT_EQ(writer.current_seq(), 2u);
  ASSERT_TRUE(
      writer.append(sample_events(5, 100), 0, sample_tracks(), 0.0).ok());
  auto paths = list_segments(dir);
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ(paths->size(), 3u);
}

TEST(SegmentWriter, DropsAreStampedIntoTheNextSegmentOnly) {
  const std::string dir = test_dir("drops");
  SegmentWriter writer(SegmentWriter::Config{
      .dir = dir, .max_segment_events = 4, .max_segment_age_s = 0.0});
  ASSERT_TRUE(writer.open().ok());
  // 8 events with 3 drops: the drops belong to the first rotated segment.
  ASSERT_TRUE(writer.append(sample_events(8), 3, sample_tracks(), 0.0).ok());
  ASSERT_TRUE(writer.finalize(sample_tracks()).ok());
  auto paths = list_segments(dir);
  ASSERT_TRUE(paths.ok());
  ASSERT_EQ(paths->size(), 2u);
  auto first = read_segment(paths->at(0));
  auto second = read_segment(paths->at(1));
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first->dropped_since_prev, 3u);
  EXPECT_EQ(second->dropped_since_prev, 0u);
}

// ---- stitcher ---------------------------------------------------------------

TEST(Stitch, DeduplicatesAcrossOverlappingSegments) {
  const std::string dir = test_dir("dedup");
  fs::create_directories(dir);
  // Segment 0 carries tickets 0..19; segment 1 overlaps with 10..29 (as a
  // crash between flush and rotation can produce).
  ASSERT_TRUE(write_segment_file(dir + "/trace-000000.cbt", 0, 0,
                                 sample_tracks(), sample_events(20))
                  .ok());
  ASSERT_TRUE(write_segment_file(dir + "/trace-000001.cbt", 1, 2,
                                 sample_tracks(), sample_events(20, 10))
                  .ok());
  auto paths = list_segments(dir);
  ASSERT_TRUE(paths.ok());
  auto stitched = stitch_segments(*paths);
  ASSERT_TRUE(stitched.ok());
  EXPECT_EQ(stitched->events.size(), 30u);
  EXPECT_EQ(stitched->duplicates_removed, 10u);
  EXPECT_EQ(stitched->dropped_total, 2u);
  // Track union has no duplicates even though both segments carried the
  // full table.
  EXPECT_EQ(stitched->tracks.size(), sample_tracks().size());
}

TEST(Stitch, FailsOnCorruptMember) {
  const std::string dir = test_dir("stitch_corrupt");
  fs::create_directories(dir);
  ASSERT_TRUE(write_segment_file(dir + "/trace-000000.cbt", 0, 0,
                                 sample_tracks(), sample_events(8))
                  .ok());
  std::ofstream(dir + "/trace-000001.cbt", std::ios::binary) << "garbage";
  auto paths = list_segments(dir);
  ASSERT_TRUE(paths.ok());
  EXPECT_FALSE(stitch_segments(*paths).ok());
}

// ---- TraceFlusher -----------------------------------------------------------

TEST(TraceFlusher, PeriodicFlushPlusFinishCapturesEveryEvent) {
  const std::string dir = test_dir("flusher");
  SpanTracer tracer(256);
  TraceFlusher flusher(tracer,
                       SegmentWriter::Config{.dir = dir,
                                             .max_segment_events = 16,
                                             .max_segment_age_s = 0.0},
                       [] { return sample_tracks(); });
  ASSERT_TRUE(flusher.open().ok());
  for (int i = 0; i < 40; ++i) {
    tracer.instant(Category::kWorker, "tick", 0, 0, 0.001 * i);
  }
  ASSERT_TRUE(flusher.flush(0.1).ok());
  for (int i = 0; i < 25; ++i) {
    tracer.instant(Category::kWorker, "tock", 0, 0, 0.1 + 0.001 * i);
  }
  ASSERT_TRUE(flusher.finish(0.2).ok());
  EXPECT_EQ(flusher.dropped_total(), 0u);

  auto paths = list_segments(dir);
  ASSERT_TRUE(paths.ok());
  auto stitched = stitch_segments(*paths);
  ASSERT_TRUE(stitched.ok()) << stitched.status().to_string();
  ASSERT_EQ(stitched->events.size(), 65u);
  EXPECT_EQ(stitched->duplicates_removed, 0u);
  // Ticket order == record order end to end.
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_STREQ(stitched->events[i].name, "tick");
  }
  for (std::size_t i = 40; i < 65; ++i) {
    EXPECT_STREQ(stitched->events[i].name, "tock");
  }
}

TEST(TraceFlusher, RingOverrunIsAccountedInSegmentsAndTotal) {
  const std::string dir = test_dir("flusher_overrun");
  SpanTracer tracer(16);
  TraceFlusher flusher(tracer,
                       SegmentWriter::Config{.dir = dir,
                                             .max_segment_events = 1 << 20,
                                             .max_segment_age_s = 0.0},
                       [] { return sample_tracks(); });
  ASSERT_TRUE(flusher.open().ok());
  for (int i = 0; i < 100; ++i) {
    tracer.instant(Category::kWorker, "burst", 0, 0, 0.001 * i);
  }
  ASSERT_TRUE(flusher.finish(1.0).ok());
  const std::uint64_t expected_drops = 100 - tracer.capacity();
  EXPECT_EQ(flusher.dropped_total(), expected_drops);
  auto paths = list_segments(dir);
  ASSERT_TRUE(paths.ok());
  auto stitched = stitch_segments(*paths);
  ASSERT_TRUE(stitched.ok());
  EXPECT_EQ(stitched->events.size(), tracer.capacity());
  EXPECT_EQ(stitched->dropped_total, expected_drops);
}

// Concurrent recording vs flushing: exercised under TSAN in the sanitizer
// tier (tools/run_tsan_tests.sh). Writers hammer the ring from several
// threads while the flusher drains it; afterwards the stitched stream must
// be duplicate-free and every event must be accounted for (flushed or
// counted dropped).
TEST(TraceFlusher, ConcurrentRecordingNeverTearsOrDuplicates) {
  const std::string dir = test_dir("flusher_tsan");
  SpanTracer tracer(1 << 12);
  TraceFlusher flusher(tracer,
                       SegmentWriter::Config{.dir = dir,
                                             .max_segment_events = 1024,
                                             .max_segment_age_s = 0.0},
                       [] { return sample_tracks(); });
  ASSERT_TRUE(flusher.open().ok());
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 4000;
  std::atomic<bool> stop{false};
  std::thread flusher_thread([&] {
    double now = 0.0;
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_TRUE(flusher.flush(now).ok());
      now += 0.001;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        tracer.complete_span(Category::kWorker, "work", 0, 1 + w,
                             0.0001 * i, 0.00005, "attempt",
                             static_cast<double>(i));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  flusher_thread.join();
  ASSERT_TRUE(flusher.finish(100.0).ok());

  auto paths = list_segments(dir);
  ASSERT_TRUE(paths.ok());
  auto stitched = stitch_segments(*paths);
  ASSERT_TRUE(stitched.ok());
  EXPECT_EQ(stitched->duplicates_removed, 0u);
  // Everything recorded is either in the stitched stream or accounted as
  // dropped — no silent loss.
  EXPECT_EQ(stitched->events.size() + flusher.dropped_total(),
            static_cast<std::size_t>(kWriters) * kPerWriter);
}

// ---- runtime integration ----------------------------------------------------

TEST(RuntimeTracePipeline, ShutdownLeavesConvertibleSegments) {
  const std::string dir = test_dir("runtime");
  rt::RuntimeConfig config;
  config.platform = platform::host(2, 1, 0);
  config.obs.trace_dir = dir;
  config.obs.trace_flush_interval_s = 0.01;
  config.obs.trace_segment_events = 64;
  config.obs.sampler_period_s = 0.01;
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  for (int i = 0; i < 200; ++i) {
    runtime.tracer().complete_span(Category::kApp, "app_work", 1, 0,
                                   runtime.now(), 0.0001);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(runtime.shutdown().ok());
  ASSERT_NE(runtime.trace_flusher(), nullptr);

  auto paths = list_segments(dir);
  ASSERT_TRUE(paths.ok());
  ASSERT_FALSE(paths->empty());
  auto stitched = stitch_segments(*paths);
  ASSERT_TRUE(stitched.ok()) << stitched.status().to_string();
  // The stream brackets the run: start instant through shutdown instant,
  // with the app spans in between and the track table naming the workers.
  bool saw_start = false, saw_shutdown = false;
  std::size_t app_spans = 0;
  for (const auto& event : stitched->events) {
    if (std::string(event.name) == "runtime_start") saw_start = true;
    if (std::string(event.name) == "runtime_shutdown") saw_shutdown = true;
    if (std::string(event.name) == "app_work") ++app_spans;
  }
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_shutdown);
  EXPECT_EQ(app_spans, 200u);
  bool named_runtime = false;
  for (const auto& track : stitched->tracks) {
    if (track.is_process && track.name == "cedr runtime") named_runtime = true;
  }
  EXPECT_TRUE(named_runtime);
}

TEST(RuntimeTracePipeline, ObsConfigRoundTripsThroughJson) {
  rt::ObsConfig config;
  config.trace_dir = "/tmp/traces";
  config.trace_flush_interval_s = 0.5;
  config.trace_segment_events = 1234;
  config.trace_segment_age_s = 7.5;
  config.trace_retention = 9;
  auto parsed = rt::ObsConfig::from_json(config.to_json());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->trace_dir, "/tmp/traces");
  EXPECT_DOUBLE_EQ(parsed->trace_flush_interval_s, 0.5);
  EXPECT_EQ(parsed->trace_segment_events, 1234u);
  EXPECT_DOUBLE_EQ(parsed->trace_segment_age_s, 7.5);
  EXPECT_EQ(parsed->trace_retention, 9u);

  // Invalid values are rejected, not silently clamped.
  json::Value bad = config.to_json();
  bad.as_object()["trace_segment_events"] = json::Value(0);
  EXPECT_FALSE(rt::ObsConfig::from_json(bad).ok());
}

}  // namespace
}  // namespace cedr::obs
