// Property-based and stress tests across module boundaries: randomized
// DAGs through the threaded runtime, randomized API workloads checked
// against kernel oracles, emulator invariants over random workload sweeps,
// and JSON parser robustness under mutation.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>

#include "cedr/api/impls.h"
#include "cedr/cedr.h"
#include "cedr/common/rng.h"
#include "cedr/json/json.h"
#include "cedr/kernels/fft.h"
#include "cedr/runtime/runtime.h"
#include "cedr/sim/model.h"
#include "cedr/sim/simulator.h"
#include "cedr/workload/workload.h"

namespace cedr {
namespace {

// ---- Random DAGs through the threaded runtime -------------------------------

class RandomDagProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomDagProperty, RuntimeRespectsAllDependencies) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 13);
  const std::size_t node_count = 10 + rng.next_below(30);

  // Random DAG: each node depends on a random subset of earlier nodes.
  auto app = std::make_shared<task::AppDescriptor>();
  app->name = "random_dag";
  auto completion_order = std::make_shared<std::vector<task::TaskId>>();
  auto order_mutex = std::make_shared<std::mutex>();
  std::vector<std::pair<task::TaskId, task::TaskId>> edges;
  for (task::TaskId id = 0; id < node_count; ++id) {
    task::Task t;
    t.id = id;
    t.name = "n" + std::to_string(id);
    t.kernel = platform::KernelId::kGeneric;
    t.problem_size = 500 + rng.next_below(2000);
    t.impls = api::make_generic_impls([completion_order, order_mutex, id] {
      std::lock_guard lock(*order_mutex);
      completion_order->push_back(id);
    });
    ASSERT_TRUE(app->graph.add_task(std::move(t)).ok());
    if (id > 0) {
      const std::size_t preds = rng.next_below(std::min<std::uint64_t>(id, 3)) +
                                (rng.next_below(2) == 0 ? 1 : 0);
      for (std::size_t p = 0; p < preds; ++p) {
        const task::TaskId from = rng.next_below(id);
        if (app->graph.add_edge(from, id).ok()) edges.emplace_back(from, id);
      }
    }
  }

  rt::RuntimeConfig config;
  config.platform = platform::host(2, 1);
  config.scheduler = GetParam() % 2 == 0 ? "EFT" : "HEFT_RT";
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  ASSERT_TRUE(runtime.submit_dag(app).ok());
  ASSERT_TRUE(runtime.wait_all(60.0).ok());
  EXPECT_TRUE(runtime.shutdown().ok());

  // Every node completed exactly once, and every edge is respected in the
  // observed completion order.
  ASSERT_EQ(completion_order->size(), node_count);
  std::vector<std::size_t> position(node_count);
  std::vector<bool> seen(node_count, false);
  for (std::size_t i = 0; i < completion_order->size(); ++i) {
    const task::TaskId id = (*completion_order)[i];
    ASSERT_LT(id, node_count);
    EXPECT_FALSE(seen[id]) << "node executed twice";
    seen[id] = true;
    position[id] = i;
  }
  for (const auto& [from, to] : edges) {
    EXPECT_LT(position[from], position[to])
        << "edge " << from << "->" << to << " violated";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagProperty, ::testing::Range(0, 6));

// ---- Random API workloads against the kernel oracle -------------------------

class RandomApiWorkload : public ::testing::TestWithParam<int> {};

TEST_P(RandomApiWorkload, ScheduledResultsMatchOracle) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  rt::RuntimeConfig config;
  config.platform = platform::host(2, 1);
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());

  constexpr std::size_t kCalls = 24;
  struct Call {
    std::vector<cedr_cplx> input;
    std::vector<cedr_cplx> output;
    bool inverse;
  };
  auto calls = std::make_shared<std::vector<Call>>(kCalls);
  for (auto& call : *calls) {
    const std::size_t n = 32u << rng.next_below(4);  // 32..256
    call.input.resize(n);
    call.output.resize(n);
    for (auto& v : call.input) {
      v = cedr_cplx(static_cast<float>(rng.uniform(-1, 1)),
                    static_cast<float>(rng.uniform(-1, 1)));
    }
    call.inverse = rng.next_below(2) == 1;
  }

  auto instance = runtime.submit_api("random_api", [calls] {
    std::vector<cedr_handle_t> handles;
    handles.reserve(calls->size());
    for (auto& call : *calls) {
      cedr_handle_t handle =
          call.inverse
              ? CEDR_IFFT_NB(call.input.data(), call.output.data(),
                             call.input.size())
              : CEDR_FFT_NB(call.input.data(), call.output.data(),
                            call.input.size());
      ASSERT_NE(handle, nullptr);
      handles.push_back(handle);
    }
    ASSERT_TRUE(CEDR_BARRIER(handles.data(), handles.size()).ok());
  });
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(runtime.wait_all(60.0).ok());
  EXPECT_TRUE(runtime.shutdown().ok());

  for (const auto& call : *calls) {
    std::vector<cedr_cplx> expected(call.input.size());
    ASSERT_TRUE(kernels::fft(call.input, expected, call.inverse).ok());
    EXPECT_LT(max_abs_diff(call.output, expected), 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomApiWorkload, ::testing::Range(0, 4));

// ---- Emulator invariants over randomized workloads ---------------------------

class SimInvariants : public ::testing::TestWithParam<int> {};

TEST_P(SimInvariants, HoldAcrossRandomConfigurations) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 5);
  const sim::SimApp pd = sim::make_pulse_doppler_model(rng.next_below(2) == 1);
  const sim::SimApp tx = sim::make_wifi_tx_model(rng.next_below(2) == 1);

  sim::SimConfig config;
  const std::size_t which = rng.next_below(3);
  if (which == 0) {
    config.platform = platform::zcu102(1 + rng.next_below(3),
                                       rng.next_below(9), rng.next_below(2));
  } else if (which == 1) {
    config.platform = platform::jetson(1 + rng.next_below(7), 1);
  } else {
    config.platform =
        platform::biglittle(1 + rng.next_below(2), rng.next_below(5),
                            rng.next_below(4));
  }
  const auto names = sched::scheduler_names();
  config.scheduler = std::string(names[rng.next_below(names.size())]);
  config.model = rng.next_below(2) == 0 ? sim::ProgrammingModel::kDagBased
                                        : sim::ProgrammingModel::kApiBased;

  std::vector<sim::Arrival> arrivals;
  const std::size_t pd_n = 1 + rng.next_below(4);
  const std::size_t tx_n = 1 + rng.next_below(4);
  for (std::size_t i = 0; i < pd_n; ++i) {
    arrivals.push_back({&pd, rng.uniform(0.0, 30e-3)});
  }
  for (std::size_t i = 0; i < tx_n; ++i) {
    arrivals.push_back({&tx, rng.uniform(0.0, 30e-3)});
  }

  const auto metrics = sim::simulate(config, arrivals);
  ASSERT_TRUE(metrics.ok()) << config.scheduler << " on "
                            << config.platform.name;
  // Conservation and ordering invariants.
  EXPECT_EQ(metrics->apps, pd_n + tx_n);
  const std::size_t expected_tasks =
      config.model == sim::ProgrammingModel::kDagBased
          ? pd_n * pd.dag_task_count() + tx_n * tx.dag_task_count()
          : pd_n * pd.kernel_call_count() + tx_n * tx.kernel_call_count();
  EXPECT_EQ(metrics->tasks_executed, expected_tasks);
  EXPECT_GT(metrics->avg_execution_time, 0.0);
  EXPECT_GE(metrics->makespan, metrics->avg_execution_time);
  EXPECT_GE(metrics->runtime_overhead, 0.0);
  EXPECT_GE(metrics->total_sched_time, 0.0);
  ASSERT_EQ(metrics->pe_busy.size(), config.platform.pes.size());
  for (const double busy : metrics->pe_busy) {
    EXPECT_GE(busy, 0.0);
    EXPECT_LE(busy, metrics->makespan * 3.5 + 1e-9);  // occupancy-bounded
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimInvariants, ::testing::Range(0, 12));

// ---- Scheduler invariants under faults ---------------------------------------

class QuarantineInvariant : public ::testing::TestWithParam<int> {};

TEST_P(QuarantineInvariant, NoHeuristicAssignsToQuarantinedPe) {
  // Randomized ready queues and quarantine patterns: no heuristic may ever
  // place a task on a PE the runtime marked quarantined.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537 + 11);
  const auto platform = platform::zcu102(1 + rng.next_below(4),
                                         1 + rng.next_below(2),
                                         rng.next_below(2));
  for (const std::string_view name : sched::scheduler_names()) {
    auto scheduler = sched::make_scheduler(name);
    ASSERT_TRUE(scheduler.ok());
    for (int round = 0; round < 20; ++round) {
      std::vector<sched::ReadyTask> ready;
      const std::size_t q_len = 1 + rng.next_below(12);
      for (std::size_t q = 0; q < q_len; ++q) {
        const bool fft = rng.next_below(2) == 0;
        ready.push_back(sched::ReadyTask{
            .task_key = q + 1,
            .app_instance_id = rng.next_below(4),
            .kernel = fft ? platform::KernelId::kFft
                          : platform::KernelId::kGeneric,
            .problem_size = 64u << rng.next_below(4),
            .data_bytes = 1024,
            .ready_time = 0.0,
            .rank = rng.uniform(0.0, 1.0),
            .class_mask = 0xffffffffu,
        });
      }
      std::vector<sched::PeState> pes;
      for (std::size_t i = 0; i < platform.pes.size(); ++i) {
        pes.push_back(sched::PeState{
            .pe_index = i,
            .cls = platform.pes[i].cls,
            .available_time = rng.uniform(0.0, 1e-3),
            .speed = platform.pes[i].speed_factor,
            .quarantined = rng.next_below(3) == 0,
        });
      }
      const sched::ScheduleContext ctx{.now = 0.0, .costs = &platform.costs};
      const sched::ScheduleResult result =
          (*scheduler)->schedule(ready, pes, ctx);
      for (const sched::Assignment& a : result.assignments) {
        EXPECT_FALSE(pes[a.pe_index].quarantined)
            << name << " assigned task to quarantined PE "
            << platform.pes[a.pe_index].name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuarantineInvariant, ::testing::Range(0, 6));

class RetryBoundProperty : public ::testing::TestWithParam<int> {};

TEST_P(RetryBoundProperty, AttemptsNeverExceedPolicyBound) {
  // Under an aggressive random fault plan, no task execution in the trace
  // may carry an attempt index beyond the policy's retry bound, and every
  // app must still finish (retry exhaustion surfaces as a status, not a
  // hang).
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 17);
  rt::RuntimeConfig config;
  config.platform = platform::host(2, 1);
  config.scheduler = GetParam() % 2 == 0 ? "EFT" : "RR";
  config.fault_plan.seed = rng.next_u64();
  config.fault_plan.defaults.fail_prob = 0.35;
  config.fault_plan.policy.max_retries = 1 + rng.next_below(3);
  config.fault_plan.policy.backoff_base_s = 50e-6;
  config.fault_plan.policy.quarantine_threshold = 2 + rng.next_below(3);
  config.fault_plan.policy.probe_period_s = 1e-3;
  const std::uint32_t bound = config.fault_plan.policy.max_retries;

  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  for (int a = 0; a < 6; ++a) {
    auto instance = runtime.submit_api("flaky", [] {
      std::vector<cedr_cplx> buf(64);
      for (int i = 0; i < 8; ++i) {
        (void)CEDR_FFT(buf.data(), buf.data(), buf.size());
      }
    });
    ASSERT_TRUE(instance.ok());
  }
  ASSERT_TRUE(runtime.wait_all(120.0).ok());
  EXPECT_TRUE(runtime.shutdown().ok());

  for (const auto& task : runtime.trace_log().tasks()) {
    EXPECT_LE(task.attempt, bound) << "retry bound exceeded on "
                                   << task.pe_name;
  }
  EXPECT_EQ(runtime.completed_apps(), 6u);
  const std::uint64_t recovered = runtime.counters().get("tasks_recovered");
  const std::uint64_t failed = runtime.counters().get("tasks_failed");
  const std::uint64_t retried = runtime.counters().get("tasks_retried");
  // Every retry either eventually recovers or terminates in a bounded
  // failure; retried counts attempts, so it is at least the number of
  // tasks that needed any retry and at most bound * that.
  EXPECT_GE(retried, recovered + failed > 0 ? 1u : 0u);
  EXPECT_LE(failed * 1u, runtime.trace_log().tasks().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RetryBoundProperty, ::testing::Range(0, 4));

// ---- JSON parser robustness under mutation -----------------------------------

TEST(JsonFuzzLite, MutatedDocumentsNeverCrash) {
  const std::string base =
      R"({"app_name":"x","tasks":[{"id":0,"kernel":"FFT","size":256,)"
      R"("bytes":4096,"predecessors":[]},{"id":1,"predecessors":[0]}]})";
  Rng rng(99);
  for (int round = 0; round < 3000; ++round) {
    std::string mutated = base;
    const std::size_t mutations = 1 + rng.next_below(4);
    for (std::size_t m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.next_below(mutated.size());
      switch (rng.next_below(3)) {
        case 0:  // flip a character
          mutated[pos] = static_cast<char>(rng.next_below(94) + 33);
          break;
        case 1:  // delete a character
          mutated.erase(pos, 1);
          break;
        default:  // duplicate a character
          mutated.insert(pos, 1, mutated[pos]);
          break;
      }
      if (mutated.empty()) break;
    }
    // Must either parse to a value or return a clean error; never crash.
    const auto parsed = json::parse(mutated);
    if (parsed.ok()) {
      (void)parsed->dump();  // serializer must handle whatever parsed
    }
  }
  SUCCEED();
}

// ---- Workload determinism across the full stack ------------------------------

TEST(WorkloadProperty, SweepIsMonotoneInWorkloadSize) {
  // More instances of the same app at the same rate can only increase (or
  // hold) the makespan.
  const sim::SimApp pd = sim::make_pulse_doppler_model();
  sim::SimConfig config;
  config.platform = platform::zcu102(3, 1, 0);
  double previous = 0.0;
  for (const std::size_t instances : {1u, 3u, 6u}) {
    const workload::Stream stream{.app = &pd, .instances = instances};
    auto result = workload::run_point(config, {&stream, 1}, 500.0, 2, 7);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->mean.makespan, previous - 1e-9);
    previous = result->mean.makespan;
  }
}

}  // namespace
}  // namespace cedr
