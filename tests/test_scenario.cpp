// Tests for the scenario DSL, sweep expansion, injector statistics, golden
// metric bands and end-to-end scenario determinism (docs/scenarios.md).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "cedr/scenario/band.h"
#include "cedr/scenario/runner.h"
#include "cedr/scenario/scenario.h"
#include "cedr/workload/workload.h"

namespace cedr::scenario {
namespace {

constexpr const char* kMinimal = R"(name = "t"
[[app]]
kind = "wifi_tx"
instances = 2
)";

std::string temp_path(const std::string& leaf) {
  return ::testing::TempDir() + "cedr_scenario_" + leaf;
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  ASSERT_TRUE(out.good());
}

std::string read_text(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---- parser robustness ---------------------------------------------------

TEST(ScenarioParse, MinimalDocument) {
  auto s = parse_scenario(kMinimal);
  ASSERT_TRUE(s.ok()) << s.status().to_string();
  EXPECT_EQ(s->name, "t");
  ASSERT_EQ(s->apps.size(), 1u);
  EXPECT_EQ(s->apps[0].kind, "wifi_tx");
  EXPECT_EQ(s->apps[0].instances, 2u);
  EXPECT_FALSE(s->has_faults);
  EXPECT_FALSE(s->adapt.enabled);
}

TEST(ScenarioParse, MalformedCorpusYieldsCleanSingleLineErrors) {
  // Fuzz-ish corpus: every entry must produce a non-OK status whose message
  // is one line and names the offending source line — never a crash, never
  // a partially-applied configuration.
  const char* corpus[] = {
      "trials =",                                  // missing value
      "= 5",                                       // missing key
      "[platform",                                 // unterminated header
      "[]",                                        // empty section name
      "[pla tform]",                               // bad section character
      "name = \"a\"\nname = \"b\"",                // duplicate root key
      "[platform]\ncpus = 1\ncpus = 2",            // duplicate section key
      "[platform]\n[platform]",                    // duplicate section
      "[[app]]\n[app]",                            // table vs array clash
      "[app]\n[[app]]",                            // array vs table clash
      "bogus_root = 1",                            // unknown root key
      "[platform]\nbogus = 1",                     // unknown section key
      "[warp_drive]",                              // unknown section
      "[[warp_drive]]",                            // unknown array section
      "name = \"unterminated",                     // unterminated string
      "name = \"bad \\q escape\"",                 // unknown escape
      "seed = 99999999999999999999999",            // integer overflow
      "seed = -1",                                 // negative for unsigned
      "trials = nope",                             // unquoted string value
      "trials = \"three\"",                        // wrong type
      "trials just-text",                          // no '=' at all
      "[sweep]\nscheduler = \"EFT\"",              // sweep axis not a list
      "[sweep]\nscheduler = []",                   // empty sweep axis
      "[sweep]\nscheduler = [\"EFT\", [\"RR\"]]",  // nested list
      "[sweep]\nscheduler = [\"EFT\"",             // unterminated list
      "[[app]]\ninstances = 2",                    // app without kind
      "[[faults.scripted]]\ntask_index = 1",       // scripted without pe
      "[faults]\nfail_prob = \"high\"",            // non-numeric probability
      "[faults.pe.]\nfail_prob = 0.5",             // empty PE name
  };
  for (const char* text : corpus) {
    auto s = parse_scenario(std::string(kMinimal) + text);
    ASSERT_FALSE(s.ok()) << "accepted: " << text;
    const std::string message = s.status().message();
    EXPECT_FALSE(message.empty()) << text;
    EXPECT_EQ(message.find('\n'), std::string::npos)
        << "multi-line error for: " << text;
    EXPECT_EQ(message.rfind("line ", 0), 0u)
        << "no line anchor in '" << message << "' for: " << text;
  }
}

TEST(ScenarioParse, SemanticErrorsAreCleanToo) {
  const char* corpus[] = {
      "name = \"t\"",                              // no apps at all
      "name = \"t\"\n[[app]]\nkind = \"doom\"",    // unknown app kind
      "name = \"t\"\n[[app]]\nkind = \"wifi_tx\"\ninstances = 0",
      "trials = 0\n[[app]]\nkind = \"wifi_tx\"",   // zero trials
  };
  for (const char* text : corpus) {
    auto s = parse_scenario(text);
    ASSERT_FALSE(s.ok()) << "accepted: " << text;
    EXPECT_EQ(s.status().message().find('\n'), std::string::npos) << text;
  }
}

TEST(ScenarioParse, CommentsAndStringsInteract) {
  auto s = parse_scenario(
      "name = \"has # not a comment\"  # real comment\n"
      "seed = 7 # trailing\n"
      "[[app]]\n"
      "kind = \"wifi_tx\"  # the paper's TX chain\n");
  ASSERT_TRUE(s.ok()) << s.status().to_string();
  EXPECT_EQ(s->name, "has # not a comment");
  EXPECT_EQ(s->seed, 7u);
}

TEST(ScenarioParse, TruncatedPrefixesNeverCrash) {
  // Chop a rich valid document at every byte; each prefix must either parse
  // or fail with a clean single-line error.
  Scenario rich;
  rich.name = "rich";
  rich.apps.push_back({.kind = "pulse_doppler", .instances = 3});
  rich.has_faults = true;
  rich.faults.defaults.fail_prob = 0.01;
  rich.adapt.enabled = true;
  rich.sweep.push_back({"scheduler", {"EFT", "RR"}});
  const std::string text = rich.to_text();
  for (std::size_t n = 0; n < text.size(); ++n) {
    auto s = parse_scenario(text.substr(0, n));
    if (!s.ok()) {
      EXPECT_EQ(s.status().message().find('\n'), std::string::npos);
    }
  }
}

// ---- round trip ----------------------------------------------------------

TEST(ScenarioRoundTrip, RichDocumentSurvivesParseEmitParse) {
  Scenario s;
  s.name = "round/trip";
  s.seed = 1234567;
  s.trials = 7;
  s.scheduler = "HEFT_RT";
  s.model = "dag";
  s.max_virtual_time_s = 12.5;
  s.sched_cost_scale = 2.25;
  s.platform.preset = "biglittle";
  s.platform.big = 2;
  s.platform.little = 6;
  s.platform.ffts = 3;
  s.arrival.process = "mmpp";
  s.arrival.rate_mbps = 333.25;
  s.arrival.burst_ratio = 6.5;
  s.arrival.burst_fraction = 0.125;
  s.apps.push_back({.kind = "pulse_doppler", .instances = 4,
                    .start_offset_s = 0.001});
  s.apps.push_back({.kind = "lane_detection", .instances = 1, .scale = 8,
                    .nonblocking = true});
  s.has_faults = true;
  s.faults.seed = 99;
  s.faults.defaults.fail_prob = 0.03;
  s.faults.per_pe["fft0"] = {.fail_prob = 0.4, .latency_prob = 0.1};
  s.faults.scripted.push_back(
      {"cpu1", 17, platform::FaultKind::kDeviceHang});
  s.faults.policy.max_retries = 6;
  s.adapt.enabled = true;
  s.adapt.half_life = 32.0;
  s.sweep.push_back({"scheduler", {"EFT", "ETF"}});
  s.sweep.push_back({"arrival.rate_mbps", {"100.0", "200.0"}});

  const std::string text = s.to_text();
  auto parsed = parse_scenario(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(*parsed, s);                     // to_text equality
  EXPECT_EQ(parsed->to_text(), text);        // byte equality
  auto reparsed = parse_scenario(parsed->to_text());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*reparsed, *parsed);
}

TEST(ScenarioRoundTrip, FormatDoubleIsExact) {
  for (const double v : {0.0, 0.05, 1.0 / 3.0, 42.0, 1e-9, 12345.678,
                         0.1 + 0.2, 2e8}) {
    const std::string text = format_double(v);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
    EXPECT_EQ(text.find('\n'), std::string::npos);
  }
}

TEST(ScenarioLoad, NameDefaultsToFileStemAndErrorsCarryPath) {
  const std::string path = temp_path("stem_test.scn");
  write_text(path, "[[app]]\nkind = \"wifi_tx\"\n");
  auto s = load_scenario(path);
  ASSERT_TRUE(s.ok()) << s.status().to_string();
  EXPECT_EQ(s->name, "cedr_scenario_stem_test");

  write_text(path, "definitely not = a scenario");
  auto bad = load_scenario(path);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find(path), std::string::npos);
  EXPECT_NE(bad.status().message().find("line 1"), std::string::npos);

  EXPECT_FALSE(load_scenario(temp_path("missing.scn")).ok());
  std::remove(path.c_str());
}

// ---- sweep expansion -----------------------------------------------------

TEST(SweepExpansion, CrossProductWithDerivedNames) {
  auto s = parse_scenario(
      "name = \"m\"\n"
      "[[app]]\nkind = \"wifi_tx\"\n"
      "[sweep]\n"
      "scheduler = [\"RR\", \"EFT\"]\n"
      "seed = [\"1\", \"2\", \"3\"]\n");
  ASSERT_TRUE(s.ok()) << s.status().to_string();
  auto points = expand_sweep(*s);
  ASSERT_TRUE(points.ok()) << points.status().to_string();
  ASSERT_EQ(points->size(), 6u);
  EXPECT_EQ((*points)[0].name, "m/scheduler=RR,seed=1");
  EXPECT_EQ((*points)[5].name, "m/scheduler=EFT,seed=3");
  EXPECT_EQ((*points)[0].scheduler, "RR");
  EXPECT_EQ((*points)[5].scheduler, "EFT");
  EXPECT_EQ((*points)[5].seed, 3u);
  for (const Scenario& point : *points) {
    EXPECT_TRUE(point.sweep.empty());
  }
}

TEST(SweepExpansion, NonSweepableKeyFails) {
  auto s = parse_scenario(std::string(kMinimal) +
                          "[sweep]\nname = [\"a\", \"b\"]\n");
  ASSERT_TRUE(s.ok()) << s.status().to_string();
  EXPECT_FALSE(expand_sweep(*s).ok());

  Scenario base = *parse_scenario(kMinimal);
  EXPECT_FALSE(apply_override(base, "name", "x").ok());
  EXPECT_FALSE(apply_override(base, "trials", "-3").ok());
  EXPECT_TRUE(apply_override(base, "arrival.rate_mbps", "250.0").ok());
  EXPECT_DOUBLE_EQ(base.arrival.rate_mbps, 250.0);
}

// ---- scenario compilation ------------------------------------------------

TEST(CompileScenario, AppMixExpandsToStreams) {
  auto s = parse_scenario(
      "name = \"mix\"\n"
      "[platform]\npreset = \"zcu102\"\ncpus = 3\nffts = 2\n"
      "[[app]]\nkind = \"lane_detection\"\ninstances = 1\nscale = 8\n"
      "[[app]]\nkind = \"pulse_doppler\"\ninstances = 5\n"
      "[[app]]\nkind = \"wifi_tx\"\ninstances = 5\n");
  ASSERT_TRUE(s.ok()) << s.status().to_string();
  auto compiled = compile_scenario(*s);
  ASSERT_TRUE(compiled.ok()) << compiled.status().to_string();
  ASSERT_EQ(compiled->streams.size(), 3u);
  EXPECT_EQ(compiled->streams[0].instances, 1u);
  EXPECT_EQ(compiled->streams[1].instances, 5u);
  EXPECT_EQ(compiled->streams[2].instances, 5u);
  EXPECT_EQ(compiled->streams[0].app->name, "LD");
  EXPECT_EQ(compiled->streams[1].app->name, "PD");
  // Closed-loop service estimates come from the HEFT rank of the whole app.
  for (const auto& stream : compiled->streams) {
    EXPECT_GT(stream.service_estimate_s, 0.0);
  }
  EXPECT_EQ(compiled->config.platform.name, "zcu102");
}

TEST(CompileScenario, RefusesUnexpandedSweep) {
  auto s = parse_scenario(std::string(kMinimal) +
                          "[sweep]\nseed = [\"1\", \"2\"]\n");
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE(compile_scenario(*s).ok());
}

// ---- injector statistics -------------------------------------------------

// Mean and squared coefficient of variation of merged inter-arrival gaps.
void interarrival_stats(const std::vector<sim::Arrival>& arrivals,
                        double* mean_out, double* cv2_out) {
  ASSERT_GT(arrivals.size(), 2u);
  double sum = 0.0, sum2 = 0.0;
  const std::size_t n = arrivals.size() - 1;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    const double gap = arrivals[i].time - arrivals[i - 1].time;
    sum += gap;
    sum2 += gap * gap;
  }
  const double mean = sum / static_cast<double>(n);
  const double var = sum2 / static_cast<double>(n) - mean * mean;
  *mean_out = mean;
  *cv2_out = var / (mean * mean);
}

TEST(InjectorStatistics, PoissonMatchesClosedForm) {
  sim::SimApp app = sim::make_wifi_tx_model();
  const workload::Stream stream{.app = &app, .instances = 20000};
  workload::ArrivalSpec spec;
  spec.process = workload::ArrivalProcess::kPoisson;
  spec.rate_mbps = 200.0;
  auto arrivals = workload::generate_arrivals({&stream, 1}, spec, 1);
  ASSERT_TRUE(arrivals.ok());
  double mean = 0.0, cv2 = 0.0;
  interarrival_stats(*arrivals, &mean, &cv2);
  const double expected = app.frame_mbits / spec.rate_mbps;
  EXPECT_NEAR(mean, expected, 0.03 * expected);
  EXPECT_NEAR(cv2, 1.0, 0.1);  // exponential gaps: CV^2 = 1
}

TEST(InjectorStatistics, MmppKeepsMeanRateButIsBursty) {
  sim::SimApp app = sim::make_wifi_tx_model();
  const workload::Stream stream{.app = &app, .instances = 40000};
  workload::ArrivalSpec spec;
  spec.process = workload::ArrivalProcess::kMmpp;
  spec.rate_mbps = 200.0;
  spec.burst_ratio = 8.0;
  spec.burst_fraction = 0.25;
  spec.burst_cycle_s = 0.05;
  auto arrivals = workload::generate_arrivals({&stream, 1}, spec, 2);
  ASSERT_TRUE(arrivals.ok());
  double mean = 0.0, cv2 = 0.0;
  interarrival_stats(*arrivals, &mean, &cv2);
  // Long-run mean rate is parameterized to stay at rate_mbps...
  const double expected = app.frame_mbits / spec.rate_mbps;
  EXPECT_NEAR(mean, expected, 0.08 * expected);
  // ...but modulation makes gaps over-dispersed relative to Poisson.
  EXPECT_GT(cv2, 1.3);
}

TEST(InjectorStatistics, ClosedLoopPacesByThinkTime) {
  sim::SimApp app = sim::make_wifi_tx_model();
  workload::Stream stream{.app = &app, .instances = 8000};
  stream.service_estimate_s = 2e-3;
  workload::ArrivalSpec spec;
  spec.process = workload::ArrivalProcess::kClosedLoop;
  spec.think_s = 1e-3;
  spec.clients = 4;
  auto arrivals = workload::generate_arrivals({&stream, 1}, spec, 3);
  ASSERT_TRUE(arrivals.ok());
  ASSERT_EQ(arrivals->size(), 8000u);
  // Each client cycles every service + E[think] = 3 ms; 4 clients merge to
  // one arrival every 0.75 ms in the long run.
  const double span = arrivals->back().time - arrivals->front().time;
  const double merged_gap = span / static_cast<double>(arrivals->size() - 1);
  const double expected = (stream.service_estimate_s + spec.think_s) / 4.0;
  EXPECT_NEAR(merged_gap, expected, 0.1 * expected);
}

// ---- golden bands --------------------------------------------------------

std::map<std::string, MetricSummary> example_summaries() {
  return {{"a", {{"makespan_ms", 10.0}, {"tasks", 200.0}}},
          {"b", {{"makespan_ms", 20.0}, {"tasks", 400.0}}}};
}

TEST(Bands, RegenerateThenCheckPasses) {
  const auto summaries = example_summaries();
  const BandFile bands = make_bands(summaries, {.rel = 0.05, .abs = 1e-6});
  const BandCheckResult check = check_bands(bands, summaries);
  EXPECT_TRUE(check.ok());
  EXPECT_EQ(check.metrics_checked, 4u);
  // Margins: 10 +/- 0.5.
  const auto& band = bands.scenarios.at("a").at("makespan_ms");
  EXPECT_DOUBLE_EQ(band.first, 9.5);
  EXPECT_DOUBLE_EQ(band.second, 10.5);
}

TEST(Bands, OutOfBandValueFailsWithNamedMetric) {
  const auto golden = example_summaries();
  const BandFile bands = make_bands(golden, {.rel = 0.05, .abs = 1e-6});
  auto drifted = golden;
  drifted["b"]["makespan_ms"] = 25.0;  // +25%, outside the 5% band
  const BandCheckResult check = check_bands(bands, drifted);
  ASSERT_EQ(check.violations.size(), 1u);
  const BandViolation& v = check.violations[0];
  EXPECT_EQ(v.scenario, "b");
  EXPECT_EQ(v.metric, "makespan_ms");
  EXPECT_EQ(v.kind, "out-of-band");
  const std::string line = v.to_string();
  EXPECT_NE(line.find("b"), std::string::npos);
  EXPECT_NE(line.find("makespan_ms"), std::string::npos);
  EXPECT_NE(line.find("25"), std::string::npos);
}

TEST(Bands, MissingAndNewScenariosAreViolations) {
  const auto golden = example_summaries();
  const BandFile bands = make_bands(golden, {});
  std::map<std::string, MetricSummary> run = golden;
  run.erase("a");
  run["c"] = {{"makespan_ms", 1.0}};
  const BandCheckResult check = check_bands(bands, run);
  ASSERT_EQ(check.violations.size(), 2u);
  EXPECT_EQ(check.violations[0].kind, "missing-scenario");
  EXPECT_EQ(check.violations[0].scenario, "a");
  EXPECT_EQ(check.violations[1].kind, "new-scenario");
  EXPECT_EQ(check.violations[1].scenario, "c");
}

TEST(Bands, FileRoundTrip) {
  const BandFile bands = make_bands(example_summaries(), {});
  const std::string path = temp_path("bands.band.json");
  ASSERT_TRUE(bands.save(path).ok());
  auto loaded = BandFile::load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_TRUE(check_bands(*loaded, example_summaries()).ok());
  std::remove(path.c_str());

  auto bad = BandFile::from_json(*json::parse(
      R"({"scenarios": {"a": {"m": [2.0, 1.0]}}})"));
  EXPECT_FALSE(bad.ok());  // lo > hi
}

// ---- end-to-end determinism ----------------------------------------------

Scenario small_scenario() {
  auto s = parse_scenario(
      "name = \"det\"\nseed = 5\ntrials = 2\n"
      "[platform]\npreset = \"zcu102\"\ncpus = 3\nffts = 1\n"
      "[arrival]\nprocess = \"poisson\"\nrate_mbps = 300.0\n"
      "[[app]]\nkind = \"wifi_tx\"\ninstances = 3\n"
      "[[app]]\nkind = \"pulse_doppler\"\ninstances = 2\n");
  EXPECT_TRUE(s.ok()) << s.status().to_string();
  return *s;
}

TEST(ScenarioRun, SummaryIsDeterministic) {
  const Scenario s = small_scenario();
  auto a = run_scenario(s);
  auto b = run_scenario(s);
  ASSERT_TRUE(a.ok()) << a.status().to_string();
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->summary.size(), b->summary.size());
  for (const auto& [metric, value] : a->summary) {
    ASSERT_TRUE(b->summary.count(metric)) << metric;
    EXPECT_EQ(value, b->summary.at(metric)) << metric;  // bit-identical
  }
  // The new virtual-clock quantiles are populated and positive.
  EXPECT_GT(a->summary.at("queue_delay_p95_us"), 0.0);
  EXPECT_GT(a->summary.at("service_p50_us"), 0.0);
  EXPECT_GT(a->summary.at("sched_round_p50_us"), 0.0);
}

TEST(ScenarioRun, SerialAndConcurrentExecutionAgree) {
  const Scenario s = small_scenario();
  auto compiled = compile_scenario(s);
  ASSERT_TRUE(compiled.ok());
  auto serial = run_scenario(*compiled);
  ASSERT_TRUE(serial.ok());
  std::vector<MetricSummary> concurrent(4);
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < concurrent.size(); ++t) {
    pool.emplace_back([&, t] {
      auto r = run_scenario(*compiled);
      if (r.ok()) concurrent[t] = r->summary;
    });
  }
  for (auto& t : pool) t.join();
  for (const MetricSummary& summary : concurrent) {
    EXPECT_EQ(summary, serial->summary);
  }
}

TEST(ScenarioRun, ChromeTraceIsByteIdentical) {
  auto compiled = compile_scenario(small_scenario());
  ASSERT_TRUE(compiled.ok());
  const std::string path_a = temp_path("trace_a.json");
  const std::string path_b = temp_path("trace_b.json");
  ASSERT_TRUE(write_scenario_trace(*compiled, path_a).ok());
  ASSERT_TRUE(write_scenario_trace(*compiled, path_b).ok());
  const std::string a = read_text(path_a);
  const std::string b = read_text(path_b);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("traceEvents"), std::string::npos);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(ScenarioRun, SchedCostScaleDegradesTheSchedule) {
  // The acceptance knob: scaling the scheduler's cost view (ground truth
  // untouched) must move the banded metrics — a deliberately perturbed cost
  // table fails the golden check.
  Scenario s = small_scenario();
  auto honest = run_scenario(s);
  s.sched_cost_scale = 16.0;
  auto skewed = run_scenario(s);
  ASSERT_TRUE(honest.ok());
  ASSERT_TRUE(skewed.ok());
  EXPECT_NE(honest->summary.at("makespan_ms"),
            skewed->summary.at("makespan_ms"));
  const BandFile bands = make_bands({{s.name, honest->summary}},
                                    {.rel = 0.01, .abs = 1e-9});
  const BandCheckResult check =
      check_bands(bands, {{s.name, skewed->summary}});
  EXPECT_FALSE(check.ok());
}

TEST(ScenarioRun, FaultAndAdaptCountersSurface) {
  auto s = parse_scenario(
      "name = \"soak\"\nseed = 9\ntrials = 1\n"
      "[platform]\npreset = \"zcu102\"\ncpus = 3\nffts = 1\n"
      "[faults]\nseed = 20644\nfail_prob = 0.05\nmax_retries = 5\n"
      "[adapt]\nenabled = true\n"
      "[[app]]\nkind = \"pulse_doppler\"\ninstances = 3\n");
  ASSERT_TRUE(s.ok()) << s.status().to_string();
  auto result = run_scenario(*s);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_GT(result->summary.at("faults_injected"), 0.0);
  EXPECT_GT(result->summary.at("tasks_retried"), 0.0);
  EXPECT_EQ(result->summary.at("tasks_lost"), 0.0);
  EXPECT_GT(result->summary.at("adapt_observations"), 0.0);
  EXPECT_GT(result->summary.at("adapt_publishes"), 0.0);
}

}  // namespace
}  // namespace cedr::scenario
