// Tests for the fault-injection subsystem: deterministic FaultPlan streams,
// scripted events, bounded retry onto an alternate PE type, quarantine with
// probe-based reinstatement, and graceful CPU fallback for quarantined
// accelerators (bit-identical results through the same dispatch table).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "cedr/cedr.h"
#include "cedr/platform/fault.h"
#include "cedr/runtime/runtime.h"
#include "cedr/sim/model.h"
#include "cedr/sim/simulator.h"

namespace cedr {
namespace {

using platform::FaultKind;
using platform::FaultPlan;
using platform::FaultSpec;
using platform::ScriptedFault;

// ---- FaultPlan / FaultInjector determinism --------------------------------

FaultPlan noisy_plan(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.defaults.fail_prob = 0.2;
  plan.defaults.hang_prob = 0.1;
  plan.defaults.latency_prob = 0.3;
  return plan;
}

std::vector<FaultKind> draw_sequence(const FaultPlan& plan,
                                     const platform::PlatformConfig& platform,
                                     std::size_t pe_index, std::size_t count) {
  platform::FaultInjector injector(plan, platform.pes);
  std::vector<FaultKind> kinds;
  kinds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    kinds.push_back(injector.next(pe_index).kind);
  }
  return kinds;
}

TEST(FaultInjector, SameSeedReproducesSameSequence) {
  const auto platform = platform::host(2, 1);
  const FaultPlan plan = noisy_plan(0xfeedu);
  for (std::size_t pe = 0; pe < platform.pes.size(); ++pe) {
    EXPECT_EQ(draw_sequence(plan, platform, pe, 500),
              draw_sequence(plan, platform, pe, 500))
        << "stream for PE " << pe << " is not reproducible";
  }
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  const auto platform = platform::host(2, 1);
  EXPECT_NE(draw_sequence(noisy_plan(1), platform, 0, 500),
            draw_sequence(noisy_plan(2), platform, 0, 500));
}

TEST(FaultInjector, StreamsAreIndependentPerPe) {
  // A PE's stream depends only on (seed, PE name, ordinal): interleaving
  // draws across PEs must not change any individual sequence.
  const auto platform = platform::host(2, 1);
  const FaultPlan plan = noisy_plan(0xabcdu);
  platform::FaultInjector interleaved(plan, platform.pes);
  std::vector<std::vector<FaultKind>> seqs(platform.pes.size());
  for (std::size_t i = 0; i < 200; ++i) {
    for (std::size_t pe = 0; pe < platform.pes.size(); ++pe) {
      seqs[pe].push_back(interleaved.next(pe).kind);
    }
  }
  for (std::size_t pe = 0; pe < platform.pes.size(); ++pe) {
    EXPECT_EQ(seqs[pe], draw_sequence(plan, platform, pe, 200));
    EXPECT_EQ(interleaved.decided(pe), 200u);
  }
}

TEST(FaultInjector, ScriptedEventOverridesWithoutShiftingStream) {
  const auto platform = platform::host(1);
  FaultPlan quiet;  // no probabilistic faults at all
  quiet.seed = 99;
  FaultPlan scripted = quiet;
  scripted.scripted.push_back(
      ScriptedFault{.pe = "cpu0", .task_index = 5, .kind = FaultKind::kDeviceHang});
  const auto base = draw_sequence(quiet, platform, 0, 10);
  const auto with = draw_sequence(scripted, platform, 0, 10);
  for (std::size_t i = 0; i < 10; ++i) {
    if (i == 5) {
      EXPECT_EQ(with[i], FaultKind::kDeviceHang);
    } else {
      EXPECT_EQ(with[i], base[i]) << "ordinal " << i << " shifted";
    }
  }
}

TEST(FaultPlan, JsonRoundTrip) {
  FaultPlan plan = noisy_plan(0x1234u);
  plan.per_pe["fft0"] = FaultSpec{.fail_prob = 1.0};
  plan.scripted.push_back(
      ScriptedFault{.pe = "cpu1", .task_index = 7, .kind = FaultKind::kLatencySpike});
  plan.policy.max_retries = 5;
  plan.policy.quarantine_threshold = 2;
  auto parsed = FaultPlan::from_json(plan.to_json());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->seed, plan.seed);
  EXPECT_DOUBLE_EQ(parsed->defaults.fail_prob, plan.defaults.fail_prob);
  ASSERT_EQ(parsed->per_pe.count("fft0"), 1u);
  EXPECT_DOUBLE_EQ(parsed->per_pe.at("fft0").fail_prob, 1.0);
  ASSERT_EQ(parsed->scripted.size(), 1u);
  EXPECT_EQ(parsed->scripted[0].pe, "cpu1");
  EXPECT_EQ(parsed->scripted[0].task_index, 7u);
  EXPECT_EQ(parsed->scripted[0].kind, FaultKind::kLatencySpike);
  EXPECT_EQ(parsed->policy.max_retries, 5u);
  EXPECT_EQ(parsed->policy.quarantine_threshold, 2u);
}

TEST(FaultPlan, ValidateRejectsBadValues) {
  FaultPlan plan;
  plan.defaults.fail_prob = 1.5;
  EXPECT_FALSE(plan.validate().ok());
  plan.defaults.fail_prob = -0.1;
  EXPECT_FALSE(plan.validate().ok());
  plan.defaults.fail_prob = 0.5;
  plan.policy.backoff_factor = 0.0;
  EXPECT_FALSE(plan.validate().ok());
}

// ---- threaded runtime: retry / quarantine / fallback ----------------------

/// A host platform where EFT finds the FFT accelerator irresistible, so FFT
/// work lands on fft0 first and the fault path gets exercised.
rt::RuntimeConfig accel_config() {
  rt::RuntimeConfig config;
  config.platform = platform::host(/*cpus=*/2, /*ffts=*/1);
  config.platform.costs.set(platform::KernelId::kFft,
                            platform::PeClass::kFftAccel, {.fixed_s = 1e-9});
  config.platform.costs.set_transfer(platform::PeClass::kFftAccel, 0.0, 0.0);
  config.scheduler = "EFT";
  return config;
}

TEST(RuntimeFaults, RetryLandsOnAlternatePeType) {
  rt::RuntimeConfig config = accel_config();
  // fft0 always fails; CPUs are clean. Every FFT first fails on the
  // accelerator, then the retry's narrowed class mask routes it to a CPU.
  config.fault_plan.per_pe["fft0"] = FaultSpec{.fail_prob = 1.0};
  config.fault_plan.policy.quarantine_threshold = 0;  // isolate retry logic
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  auto instance = runtime.submit_api("retry_app", [] {
    std::vector<cedr_cplx> in(256), out(256);
    in[1] = cedr_cplx(1.0f, 0.0f);
    ASSERT_TRUE(CEDR_FFT(in.data(), out.data(), 256).ok());
    // Spectral magnitude of a shifted delta is flat 1: the retried result
    // is numerically correct, not just "some status".
    for (std::size_t k = 0; k < 256; k += 17) {
      EXPECT_NEAR(std::abs(out[k]), 1.0f, 1e-4f);
    }
  });
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(runtime.wait_all(60.0).ok());
  EXPECT_TRUE(runtime.shutdown().ok());

  EXPECT_GE(runtime.counters().get("faults_injected"), 1u);
  EXPECT_GE(runtime.counters().get("tasks_retried"), 1u);
  EXPECT_GE(runtime.counters().get("tasks_recovered"), 1u);
  EXPECT_EQ(runtime.counters().get("tasks_failed"), 0u);
  // The failed attempt ran on fft0; the successful one must not have.
  bool saw_failed_on_fft = false;
  bool saw_recovery_elsewhere = false;
  for (const auto& task : runtime.trace_log().tasks()) {
    if (!task.ok) saw_failed_on_fft |= task.pe_name == "fft0";
    if (task.ok && task.attempt > 0) {
      saw_recovery_elsewhere |= task.pe_name != "fft0";
    }
  }
  EXPECT_TRUE(saw_failed_on_fft);
  EXPECT_TRUE(saw_recovery_elsewhere);
  // Recovered tasks feed the retry-latency histogram.
  EXPECT_GE(runtime.trace_log().retry_latency().count(), 1u);
}

TEST(RuntimeFaults, QuarantineAfterConsecutiveFaults) {
  rt::RuntimeConfig config = accel_config();
  config.fault_plan.per_pe["fft0"] = FaultSpec{.fail_prob = 1.0};
  config.fault_plan.policy.quarantine_threshold = 2;
  config.fault_plan.policy.probe_period_s = 1000.0;  // never reinstated here
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  auto instance = runtime.submit_api("quarantine_app", [] {
    std::vector<cedr_cplx> in(128), out(128);
    in[1] = cedr_cplx(1.0f, 0.0f);
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(CEDR_FFT(in.data(), out.data(), 128).ok());
      EXPECT_NEAR(std::abs(out[5]), 1.0f, 1e-4f);
    }
  });
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(runtime.wait_all(60.0).ok());

  EXPECT_GE(runtime.counters().get("pes_quarantined"), 1u);
  EXPECT_EQ(runtime.counters().get("tasks_failed"), 0u);
  bool fft_quarantined = false;
  for (const rt::PeHealth& pe : runtime.pe_health()) {
    if (pe.pe_name == "fft0") {
      fft_quarantined = pe.quarantined;
      EXPECT_GE(pe.quarantines, 1u);
      EXPECT_GE(pe.faults_seen, 2u);
    }
  }
  EXPECT_TRUE(fft_quarantined);
  EXPECT_TRUE(runtime.shutdown().ok());
}

TEST(RuntimeFaults, ProbeReinstatesRecoveredPe) {
  rt::RuntimeConfig config = accel_config();
  // The accelerator fails its first three tasks (a transient brown-out),
  // then behaves: the probe task after quarantine must reinstate it.
  for (std::uint64_t i = 0; i < 3; ++i) {
    config.fault_plan.scripted.push_back(ScriptedFault{
        .pe = "fft0", .task_index = i, .kind = FaultKind::kTransientFail});
  }
  config.fault_plan.policy.quarantine_threshold = 3;
  config.fault_plan.policy.probe_period_s = 1e-3;
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  auto instance = runtime.submit_api("probe_app", [] {
    std::vector<cedr_cplx> in(128), out(128);
    in[1] = cedr_cplx(1.0f, 0.0f);
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(CEDR_FFT(in.data(), out.data(), 128).ok());
      // Keep the app alive past the probe window so the reinstated PE
      // actually sees post-recovery work.
      std::this_thread::sleep_for(std::chrono::microseconds(250));
    }
  });
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(runtime.wait_all(60.0).ok());

  EXPECT_GE(runtime.counters().get("pes_quarantined"), 1u);
  EXPECT_GE(runtime.counters().get("pes_reinstated"), 1u);
  EXPECT_EQ(runtime.counters().get("tasks_failed"), 0u);
  for (const rt::PeHealth& pe : runtime.pe_health()) {
    if (pe.pe_name == "fft0") {
      EXPECT_FALSE(pe.quarantined);
    }
  }
  EXPECT_TRUE(runtime.shutdown().ok());
}

TEST(RuntimeFaults, RetriesExhaustedSurfaceTerminalFailure) {
  rt::RuntimeConfig config;
  config.platform = platform::host(/*cpus=*/2);
  config.scheduler = "EFT";
  config.fault_plan.defaults.fail_prob = 1.0;  // every PE always fails
  config.fault_plan.policy.max_retries = 2;
  config.fault_plan.policy.quarantine_threshold = 0;
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  auto instance = runtime.submit_api("doomed", [] {
    std::vector<cedr_cplx> buf(64);
    EXPECT_FALSE(CEDR_FFT(buf.data(), buf.data(), 64).ok());
  });
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(runtime.wait_all(60.0).ok());
  EXPECT_TRUE(runtime.shutdown().ok());

  // 1 first attempt + 2 retries, then the failure becomes visible.
  EXPECT_EQ(runtime.counters().get("tasks_failed"), 1u);
  EXPECT_EQ(runtime.counters().get("tasks_retried"), 2u);
  EXPECT_GE(runtime.counters().get("faults_injected"), 3u);
  EXPECT_EQ(runtime.counters().get("tasks_recovered"), 0u);
}

TEST(RuntimeFaults, MmultFallbackMatchesCpuGolden) {
  constexpr std::size_t kM = 12, kK = 9, kN = 7;
  std::vector<float> a(kM * kK), b(kK * kN);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = std::sin(0.37f * static_cast<float>(i));
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = std::cos(0.53f * static_cast<float>(i));
  }

  auto run_once = [&](bool faulty, std::vector<float>& c) {
    rt::RuntimeConfig config;
    config.platform = platform::host(/*cpus=*/2, /*ffts=*/0, /*mmults=*/1);
    config.platform.costs.set(platform::KernelId::kMmult,
                              platform::PeClass::kMmultAccel,
                              {.fixed_s = 1e-9});
    config.platform.costs.set_transfer(platform::PeClass::kMmultAccel, 0.0,
                                       0.0);
    config.scheduler = "EFT";
    if (faulty) {
      config.fault_plan.per_pe["mmult0"] = FaultSpec{.fail_prob = 1.0};
      config.fault_plan.policy.quarantine_threshold = 1;
      config.fault_plan.policy.probe_period_s = 1000.0;
    }
    rt::Runtime runtime(config);
    ASSERT_TRUE(runtime.start().ok());
    auto instance = runtime.submit_api("mmult_app", [&] {
      ASSERT_TRUE(CEDR_MMULT(a.data(), b.data(), c.data(), kM, kK, kN).ok());
    });
    ASSERT_TRUE(instance.ok());
    ASSERT_TRUE(runtime.wait_all(60.0).ok());
    ASSERT_TRUE(runtime.shutdown().ok());
    if (faulty) {
      EXPECT_GE(runtime.counters().get("pes_quarantined"), 1u);
      EXPECT_EQ(runtime.counters().get("tasks_failed"), 0u);
    } else {
      EXPECT_EQ(runtime.counters().get("faults_injected"), 0u);
    }
  };

  std::vector<float> golden(kM * kN, -1.0f), fallback(kM * kN, -2.0f);
  run_once(/*faulty=*/false, golden);
  run_once(/*faulty=*/true, fallback);
  // The fallback runs the *same* CPU implementation the clean run used, so
  // the result is bit-identical, not merely close.
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(golden[i], fallback[i]) << "element " << i;
  }
}

TEST(RuntimeFaults, DeviceHangRecoversThroughWatchdog) {
  rt::RuntimeConfig config = accel_config();
  config.fault_plan.scripted.push_back(ScriptedFault{
      .pe = "fft0", .task_index = 0, .kind = FaultKind::kDeviceHang});
  config.fault_plan.policy.quarantine_threshold = 0;
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  auto instance = runtime.submit_api("hang_app", [] {
    std::vector<cedr_cplx> in(128), out(128);
    in[1] = cedr_cplx(1.0f, 0.0f);
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(CEDR_FFT(in.data(), out.data(), 128).ok());
      EXPECT_NEAR(std::abs(out[3]), 1.0f, 1e-4f);
    }
  });
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(runtime.wait_all(60.0).ok());
  EXPECT_TRUE(runtime.shutdown().ok());
  EXPECT_GE(runtime.counters().get("faults_injected"), 1u);
  EXPECT_EQ(runtime.counters().get("tasks_failed"), 0u);
  EXPECT_GE(runtime.counters().get("tasks_recovered"), 1u);
}

// ---- discrete-event emulator parity ---------------------------------------

TEST(SimFaults, DeterministicAndLossless) {
  sim::SimConfig config;
  config.platform = platform::zcu102(3, 1, 0);
  config.scheduler = "EFT";
  config.faults.seed = 17;
  config.faults.defaults.fail_prob = 0.05;
  config.faults.policy.quarantine_threshold = 3;
  config.faults.policy.probe_period_s = 5e-3;

  const sim::SimApp pd = sim::make_pulse_doppler_model(false);
  std::vector<sim::Arrival> arrivals;
  for (int i = 0; i < 8; ++i) {
    arrivals.push_back(sim::Arrival{&pd, 0.002 * i});
  }
  auto first = sim::simulate(config, arrivals);
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  auto second = sim::simulate(config, arrivals);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(first->faults_injected, 0u);
  EXPECT_GT(first->tasks_retried, 0u);
  EXPECT_EQ(first->tasks_lost, 0u);
  EXPECT_EQ(first->faults_injected, second->faults_injected);
  EXPECT_EQ(first->tasks_retried, second->tasks_retried);
  EXPECT_EQ(first->pes_quarantined, second->pes_quarantined);
  EXPECT_DOUBLE_EQ(first->makespan, second->makespan);
}

// Regression: at high fault rates every PE cycles through quarantine and the
// event loop used to spin at a frozen virtual clock (an open probe window
// kept reporting an event at now_ while the scheduling round was gated).
// The simulation must terminate — with terminal losses, not a hang.
TEST(SimFaults, HighFaultRateTerminates) {
  sim::SimConfig config;
  config.platform = platform::zcu102(3, 1, 0);
  config.scheduler = "EFT";
  config.faults.seed = 42;
  config.faults.defaults.fail_prob = 0.35;
  config.faults.policy.max_retries = 4;
  config.faults.policy.quarantine_threshold = 3;
  config.faults.policy.probe_period_s = 5e-3;

  const sim::SimApp pd = sim::make_pulse_doppler_model(false);
  std::vector<sim::Arrival> arrivals;
  for (int i = 0; i < 8; ++i) {
    arrivals.push_back(sim::Arrival{&pd, 0.002 * i});
  }
  auto metrics = sim::simulate(config, arrivals);
  ASSERT_TRUE(metrics.ok()) << metrics.status().to_string();
  EXPECT_GT(metrics->faults_injected, 0u);
  EXPECT_GT(metrics->pes_quarantined, 0u);
}

}  // namespace
}  // namespace cedr
