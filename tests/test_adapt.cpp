// Tests for the online cost-model adaptation subsystem (cedr::adapt):
// recursive-least-squares coefficient recovery, exponential-decay tracking
// of drifting device latency, outlier rejection under fault injection,
// lock-free snapshot publication, determinism, and the end-to-end wiring
// through the discrete-event emulator and the threaded runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "cedr/adapt/fit.h"
#include "cedr/adapt/online_estimator.h"
#include "cedr/cedr.h"
#include "cedr/runtime/runtime.h"
#include "cedr/sim/model.h"
#include "cedr/sim/simulator.h"

namespace cedr::adapt {
namespace {

using platform::KernelCost;
using platform::KernelId;
using platform::PeClass;

/// Ground-truth polynomial used by the synthetic-feed tests.
constexpr KernelCost kTruth{
    .fixed_s = 5.0e-6, .per_point_s = 2.0e-8, .per_nlogn_s = 3.0e-9};

double eval(const KernelCost& c, std::size_t n) { return c.eval(n); }

/// Returns a copy of `model` with every kernel coefficient multiplied by
/// `factor` (transfer terms untouched) — a uniformly mis-calibrated table.
platform::CostModel perturb(const platform::CostModel& model, double factor) {
  platform::CostModel out = model;
  for (std::size_t k = 0; k < platform::kNumKernelIds; ++k) {
    for (std::size_t c = 0; c < platform::kNumPeClasses; ++c) {
      const auto kernel = static_cast<KernelId>(k);
      const auto cls = static_cast<PeClass>(c);
      const KernelCost& cost = model.get(kernel, cls);
      out.set(kernel, cls,
              KernelCost{.fixed_s = cost.fixed_s * factor,
                         .per_point_s = cost.per_point_s * factor,
                         .per_nlogn_s = cost.per_nlogn_s * factor});
    }
  }
  return out;
}

TEST(RlsFitTest, RecoversPolynomialCoefficientsExactly) {
  RlsFit fit(FitBasis::kPoly, RlsFit::kNoDecay);
  const std::size_t sizes[] = {64, 256, 1024, 4096};
  for (int i = 0; i < 200; ++i) {
    const std::size_t n = sizes[i % 4];
    fit.update(static_cast<double>(n), eval(kTruth, n));
  }
  const KernelCost got = fit.coefficients();
  EXPECT_NEAR(got.fixed_s, kTruth.fixed_s, 1e-6 * kTruth.fixed_s);
  EXPECT_NEAR(got.per_point_s, kTruth.per_point_s, 1e-6 * kTruth.per_point_s);
  EXPECT_NEAR(got.per_nlogn_s, kTruth.per_nlogn_s, 1e-6 * kTruth.per_nlogn_s);
  EXPECT_TRUE(fit.multi_size());
}

TEST(RlsFitTest, DecayTracksStepChangeInLatency) {
  RlsFit fit(FitBasis::kPoly, /*half_life_samples=*/16.0);
  const std::size_t sizes[] = {128, 512, 2048};
  // Phase 1: the device behaves per the table...
  for (int i = 0; i < 120; ++i) {
    const std::size_t n = sizes[i % 3];
    fit.update(static_cast<double>(n), eval(kTruth, n));
  }
  // ...phase 2: it gets 3x slower (thermal throttling, say).
  const KernelCost slow{.fixed_s = 3 * kTruth.fixed_s,
                        .per_point_s = 3 * kTruth.per_point_s,
                        .per_nlogn_s = 3 * kTruth.per_nlogn_s};
  for (int i = 0; i < 120; ++i) {
    const std::size_t n = sizes[i % 3];
    fit.update(static_cast<double>(n), eval(slow, n));
  }
  // 120 samples ~= 7.5 half-lives: phase-1 weight is down to < 1 %.
  for (const std::size_t n : sizes) {
    EXPECT_NEAR(fit.predict(static_cast<double>(n)), eval(slow, n),
                0.05 * eval(slow, n));
  }
}

TEST(RlsFitTest, NoDecayAveragesWholeHistory) {
  // Without decay the same step-change splits the difference instead of
  // tracking it — the property that motivates the forgetting factor.
  RlsFit fit(FitBasis::kPoly, RlsFit::kNoDecay);
  for (int i = 0; i < 100; ++i) fit.update(256.0, eval(kTruth, 256));
  for (int i = 0; i < 100; ++i) fit.update(256.0, 3.0 * eval(kTruth, 256));
  EXPECT_NEAR(fit.predict(256.0), 2.0 * eval(kTruth, 256),
              0.05 * eval(kTruth, 256));
}

TEST(FitAffineTest, SingleSizeFallsBackToMean) {
  std::vector<FitSample> samples;
  for (int i = 0; i < 10; ++i) {
    samples.push_back({.n = 256.0, .service_s = 4e-6 + 1e-7 * (i % 3)});
  }
  const KernelCost cost = fit_affine(samples);
  EXPECT_GT(cost.fixed_s, 0.0);
  EXPECT_EQ(cost.per_point_s, 0.0);
  EXPECT_EQ(cost.per_nlogn_s, 0.0);
  double mean = 0.0;
  for (const FitSample& s : samples) mean += s.service_s;
  mean /= static_cast<double>(samples.size());
  EXPECT_NEAR(cost.fixed_s, mean, 1e-12);
}

TEST(FitAffineTest, NegativeSlopeFallsBackToMean) {
  // Service time *decreasing* with size is non-physical measurement noise.
  std::vector<FitSample> samples{{.n = 64.0, .service_s = 9e-6},
                                 {.n = 256.0, .service_s = 6e-6},
                                 {.n = 1024.0, .service_s = 3e-6}};
  const KernelCost cost = fit_affine(samples);
  EXPECT_EQ(cost.per_point_s, 0.0);
  EXPECT_NEAR(cost.fixed_s, 6e-6, 1e-12);
}

TEST(FitAffineTest, RecoversAffineCoefficients) {
  std::vector<FitSample> samples;
  for (const double n : {64.0, 256.0, 1024.0, 64.0, 4096.0}) {
    samples.push_back({.n = n, .service_s = 2e-6 + 3e-9 * n});
  }
  const KernelCost cost = fit_affine(samples);
  EXPECT_NEAR(cost.fixed_s, 2e-6, 1e-11);
  EXPECT_NEAR(cost.per_point_s, 3e-9, 1e-14);
}

TEST(AdaptConfigTest, JsonRoundTripAndValidation) {
  AdaptConfig config;
  config.enabled = true;
  config.half_life = 32.0;
  config.min_samples = 4;
  config.outlier_threshold = 6.0;
  config.publish_interval = 8;
  auto parsed = AdaptConfig::from_json(config.to_json());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->enabled);
  EXPECT_EQ(parsed->half_life, 32.0);
  EXPECT_EQ(parsed->min_samples, 4u);
  EXPECT_EQ(parsed->outlier_threshold, 6.0);
  EXPECT_EQ(parsed->publish_interval, 8u);

  auto bad = AdaptConfig::from_json(json::Object{{"half_life", json::Value(-1.0)}});
  EXPECT_FALSE(bad.ok());
  bad = AdaptConfig::from_json(json::Object{{"min_samples", json::Value(0)}});
  EXPECT_FALSE(bad.ok());
  bad = AdaptConfig::from_json(
      json::Object{{"outlier_threshold", json::Value(0.5)}});
  EXPECT_FALSE(bad.ok());
  bad = AdaptConfig::from_json(
      json::Object{{"publish_interval", json::Value(0)}});
  EXPECT_FALSE(bad.ok());
}

TEST(OnlineEstimatorTest, ColdStartServesPresetTables) {
  const platform::PlatformConfig zcu = platform::zcu102(3, 1, 0);
  AdaptConfig config;
  config.enabled = true;
  OnlineCostEstimator estimator(config, zcu.costs);
  const auto snap = estimator.snapshot();
  for (const std::size_t n : {64u, 256u, 1024u}) {
    EXPECT_EQ(snap->estimate(KernelId::kFft, PeClass::kCpu, n, 8 * n),
              zcu.costs.estimate(KernelId::kFft, PeClass::kCpu, n, 8 * n));
  }
  EXPECT_EQ(estimator.observations(), 0u);
  EXPECT_EQ(estimator.mean_rel_error(), 0.0);
}

TEST(OnlineEstimatorTest, WarmupGateBlendsTowardLearned) {
  const platform::PlatformConfig zcu = platform::zcu102(3, 1, 0);
  AdaptConfig config;
  config.enabled = true;
  config.min_samples = 8;
  config.publish_interval = 1;
  // Preset deliberately 4x the observed truth for this pairing.
  OnlineCostEstimator estimator(config, perturb(zcu.costs, 4.0));
  const KernelCost& truth = zcu.costs.get(KernelId::kFft, PeClass::kCpu);
  const std::size_t sizes[] = {128, 256, 1024};

  auto feed = [&](int count) {
    for (int i = 0; i < count; ++i) {
      const std::size_t n = sizes[i % 3];
      estimator.observe(KernelId::kFft, PeClass::kCpu, n, 8 * n,
                        eval(truth, n));
    }
  };
  feed(4);  // below the warmup gate: snapshot must still be all-preset
  EXPECT_EQ(estimator.snapshot()->get(KernelId::kFft, PeClass::kCpu).fixed_s,
            4.0 * truth.fixed_s);
  feed(20);  // past 2x min_samples: blending complete, learned served
  const KernelCost served =
      estimator.snapshot()->get(KernelId::kFft, PeClass::kCpu);
  for (const std::size_t n : sizes) {
    EXPECT_NEAR(eval(served, n), eval(truth, n), 0.01 * eval(truth, n));
  }
  const auto stats = estimator.pair_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].blend, 1.0);
  EXPECT_EQ(stats[0].samples, 24u);
}

TEST(OnlineEstimatorTest, StepChangeIsTrackedWithinOutlierBounds) {
  const platform::PlatformConfig zcu = platform::zcu102(3, 1, 0);
  AdaptConfig config;
  config.enabled = true;
  config.half_life = 16.0;
  config.min_samples = 4;
  config.publish_interval = 1;
  config.outlier_threshold = 4.0;
  OnlineCostEstimator estimator(config, zcu.costs);
  const KernelCost& truth = zcu.costs.get(KernelId::kFft, PeClass::kFftAccel);
  const std::size_t sizes[] = {128, 256, 1024};
  // Accelerator observations carry the DMA transfer term (the estimator
  // strips it before fitting, as estimate() re-adds it when serving).
  auto transfer = [&](std::size_t n) {
    return zcu.costs.estimate(KernelId::kFft, PeClass::kFftAccel, n, 0) -
           eval(truth, n);
  };
  for (int i = 0; i < 100; ++i) {
    const std::size_t n = sizes[i % 3];
    estimator.observe(KernelId::kFft, PeClass::kFftAccel, n, 0,
                      eval(truth, n) + transfer(n));
  }
  // Device compute slows down 3x — inside the 4x outlier gate, so the
  // decayed fit must follow rather than reject the new regime.
  for (int i = 0; i < 150; ++i) {
    const std::size_t n = sizes[i % 3];
    estimator.observe(KernelId::kFft, PeClass::kFftAccel, n, 0,
                      3.0 * eval(truth, n) + transfer(n));
  }
  EXPECT_EQ(estimator.rejected(), 0u);
  const KernelCost served =
      estimator.snapshot()->get(KernelId::kFft, PeClass::kFftAccel);
  for (const std::size_t n : sizes) {
    EXPECT_NEAR(eval(served, n), 3.0 * eval(truth, n),
                0.10 * 3.0 * eval(truth, n));
  }
}

TEST(OnlineEstimatorTest, OutliersAreRejectedAfterWarmup) {
  const platform::PlatformConfig zcu = platform::zcu102(3, 1, 0);
  AdaptConfig config;
  config.enabled = true;
  config.min_samples = 4;
  config.publish_interval = 1;
  config.outlier_threshold = 4.0;
  OnlineCostEstimator estimator(config, zcu.costs);
  const KernelCost& truth = zcu.costs.get(KernelId::kFft, PeClass::kCpu);
  for (int i = 0; i < 50; ++i) {
    estimator.observe(KernelId::kFft, PeClass::kCpu, 256, 0, eval(truth, 256));
  }
  // A 1 ms latency spike against a microsecond-scale kernel: rejected.
  estimator.observe(KernelId::kFft, PeClass::kCpu, 256, 0,
                    eval(truth, 256) + 1e-3);
  EXPECT_EQ(estimator.rejected(), 1u);
  const KernelCost served =
      estimator.snapshot()->get(KernelId::kFft, PeClass::kCpu);
  EXPECT_NEAR(eval(served, 256), eval(truth, 256), 0.01 * eval(truth, 256));
}

// ---------------------------------------------------------------------------
// Emulator integration: the estimator fed by the sim engine's virtual
// service times.

sim::SimConfig convergence_config() {
  sim::SimConfig config;
  config.platform = platform::zcu102(3, 1, 0);
  config.scheduler = "EFT";
  // Blocking API model: the app thread issues one kernel at a time, so the
  // CPU pool never oversubscribes and virtual service times match the
  // analytic tables exactly. (Under contention the estimator learns the
  // *effective* — stretched — costs instead; bench/micro_adapt.cpp covers
  // the full-engine experiment.)
  config.model = sim::ProgrammingModel::kApiBased;
  config.costs.accel_occupancy = 1.0;  // isolated-cost accel service
  config.costs.signal_overhead = 0.0;  // no per-call worker-side tax
  return config;
}

std::vector<sim::Arrival> spaced_arrivals(const sim::SimApp& app, int count,
                                          double spacing_s) {
  std::vector<sim::Arrival> arrivals;
  for (int i = 0; i < count; ++i) {
    arrivals.push_back({.app = &app, .time = i * spacing_s});
  }
  return arrivals;
}

TEST(AdaptSimTest, ConvergesToAnalyticCoefficientsUnderStationaryWorkload) {
  sim::SimConfig config = convergence_config();
  AdaptConfig adapt_config;
  adapt_config.enabled = true;
  adapt_config.min_samples = 8;
  // Estimator cold-starts from a 4x mis-calibrated table; the workload's
  // observed service times are generated from the true platform tables.
  OnlineCostEstimator estimator(adapt_config, perturb(config.platform.costs, 4.0));
  config.adapt = &estimator;

  const sim::SimApp pd = sim::make_pulse_doppler_model();
  auto result = sim::simulate(config, spaced_arrivals(pd, 3, 0.5));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(estimator.observations(), 500u);

  const auto snap = estimator.snapshot();
  for (const PairStats& pair : estimator.pair_stats()) {
    if (pair.samples < 2 * adapt_config.min_samples) continue;
    if (pair.kernel == KernelId::kGeneric) continue;  // glue: no true poly
    // Learned tables must predict the true analytic cost to within 10 %
    // at the sizes the workload exercised (256-point transforms).
    const double learned = eval(snap->get(pair.kernel, pair.cls), 256);
    const double truth = eval(config.platform.costs.get(pair.kernel, pair.cls), 256);
    EXPECT_NEAR(learned, truth, 0.10 * truth)
        << platform::kernel_name(pair.kernel) << " on "
        << platform::pe_class_name(pair.cls) << " (" << pair.samples
        << " samples)";
  }
  EXPECT_LT(estimator.mean_rel_error(), 0.10);
}

TEST(AdaptSimTest, FaultPlanSpikesAreRejectedNotLearned) {
  sim::SimConfig config = convergence_config();
  // 5 % latency spikes, three orders of magnitude above a 256-point FFT.
  config.faults.seed = 0xadap7;
  config.faults.defaults.latency_prob = 0.05;
  config.faults.defaults.latency_spike_s = 5e-3;

  AdaptConfig adapt_config;
  adapt_config.enabled = true;
  adapt_config.min_samples = 8;
  OnlineCostEstimator estimator(adapt_config, config.platform.costs);
  config.adapt = &estimator;

  const sim::SimApp pd = sim::make_pulse_doppler_model();
  auto result = sim::simulate(config, spaced_arrivals(pd, 3, 0.5));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(estimator.rejected(), 0u);

  const auto snap = estimator.snapshot();
  for (const PairStats& pair : estimator.pair_stats()) {
    if (pair.samples < 2 * adapt_config.min_samples) continue;
    if (pair.kernel == KernelId::kGeneric) continue;
    const double learned = eval(snap->get(pair.kernel, pair.cls), 256);
    const double truth = eval(config.platform.costs.get(pair.kernel, pair.cls), 256);
    EXPECT_NEAR(learned, truth, 0.10 * truth)
        << platform::kernel_name(pair.kernel) << " on "
        << platform::pe_class_name(pair.cls);
  }
}

TEST(AdaptSimTest, IdenticalSeededRunsEmitIdenticalLearnedTables) {
  auto run = [] {
    sim::SimConfig config = convergence_config();
    config.faults.seed = 0x5eed;
    config.faults.defaults.latency_prob = 0.02;
    AdaptConfig adapt_config;
    adapt_config.enabled = true;
    OnlineCostEstimator estimator(adapt_config, config.platform.costs);
    config.adapt = &estimator;
    const sim::SimApp pd = sim::make_pulse_doppler_model();
    auto result = sim::simulate(config, spaced_arrivals(pd, 2, 0.25));
    EXPECT_TRUE(result.ok());
    return estimator.to_json().dump();
  };
  EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------------------------
// Concurrency: snapshot-swap thread safety (run under
// tools/run_tsan_tests.sh; test_adapt is part of the TSAN tier).

TEST(AdaptConcurrencyTest, SnapshotSwapHammer) {
  const platform::PlatformConfig zcu = platform::zcu102(3, 1, 0);
  AdaptConfig config;
  config.enabled = true;
  config.min_samples = 2;
  config.publish_interval = 1;  // publish on every accept: maximal swapping
  OnlineCostEstimator estimator(config, zcu.costs);
  const KernelCost& truth = zcu.costs.get(KernelId::kFft, PeClass::kCpu);

  constexpr int kWriters = 4;
  constexpr int kObservations = 4000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&estimator, &truth, w] {
      const std::size_t sizes[] = {128, 256, 512, 1024};
      for (int i = 0; i < kObservations; ++i) {
        const std::size_t n = sizes[(w + i) % 4];
        estimator.observe(KernelId::kFft, PeClass::kCpu, n, 0, eval(truth, n));
      }
    });
  }
  std::thread reader([&estimator, &stop] {
    std::size_t reads = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const auto snap = estimator.snapshot();
      const double est = snap->estimate(KernelId::kFft, PeClass::kCpu, 256, 0);
      ASSERT_TRUE(std::isfinite(est));
      ASSERT_GT(est, 0.0);
      ++reads;
    }
    EXPECT_GT(reads, 0u);
  });
  std::thread stats_reader([&estimator, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)estimator.pair_stats();
      (void)estimator.mean_rel_error();
    }
  });
  for (std::thread& t : threads) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  stats_reader.join();

  EXPECT_EQ(estimator.observations(),
            static_cast<std::uint64_t>(kWriters * kObservations));
  EXPECT_GT(estimator.publishes(), 0u);
  const KernelCost served =
      estimator.snapshot()->get(KernelId::kFft, PeClass::kCpu);
  for (const std::size_t n : {128u, 256u, 1024u}) {
    EXPECT_NEAR(eval(served, n), eval(truth, n), 0.02 * eval(truth, n));
  }
}

// ---------------------------------------------------------------------------
// Threaded-runtime integration: workers feed the estimator, scheduling
// rounds consume snapshots, COSTS JSON is well formed.

TEST(AdaptRuntimeTest, RuntimeLearnsFromLiveServiceTimes) {
  rt::RuntimeConfig config;
  config.platform = platform::host(/*cpus=*/2, /*ffts=*/1);
  config.scheduler = "EFT";
  config.adapt.enabled = true;
  config.adapt.min_samples = 4;
  config.adapt.publish_interval = 4;
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  ASSERT_NE(runtime.adapt_estimator(), nullptr);

  auto instance = runtime.submit_api("adapt_app", [] {
    std::vector<cedr_cplx> buf(256);
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(CEDR_FFT(buf.data(), buf.data(), buf.size()).ok());
    }
  });
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(runtime.wait_app(*instance, 30.0).ok());

  const OnlineCostEstimator* estimator = runtime.adapt_estimator();
  EXPECT_GE(estimator->observations(), 32u);
  EXPECT_GT(estimator->publishes(), 0u);
  const json::Value doc = estimator->to_json();
  ASSERT_TRUE(doc.is_object());
  EXPECT_TRUE(doc.find("pairs")->is_array());
  EXPECT_FALSE(doc.find("pairs")->as_array().empty());
  EXPECT_TRUE(runtime.shutdown().ok());
}

TEST(AdaptRuntimeTest, DisabledByDefault) {
  rt::RuntimeConfig config;
  config.platform = platform::host(2, 1);
  config.scheduler = "EFT";
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  EXPECT_EQ(runtime.adapt_estimator(), nullptr);
  EXPECT_TRUE(runtime.shutdown().ok());
}

TEST(AdaptRuntimeTest, ConfigRoundTripsThroughRuntimeJson) {
  rt::RuntimeConfig config;
  config.platform = platform::host(2, 1);
  config.scheduler = "EFT";
  config.adapt.enabled = true;
  config.adapt.half_life = 48.0;
  config.adapt.min_samples = 6;
  auto parsed = rt::RuntimeConfig::from_json(config.to_json());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->adapt.enabled);
  EXPECT_EQ(parsed->adapt.half_life, 48.0);
  EXPECT_EQ(parsed->adapt.min_samples, 6u);
}

}  // namespace
}  // namespace cedr::adapt
