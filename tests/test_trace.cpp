// Tests for the execution trace log and PAPI-substitute counters.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <fstream>
#include <thread>

#include "cedr/trace/trace.h"

namespace cedr::trace {
namespace {

TEST(TraceLog, RecordsAndComputesMetrics) {
  TraceLog log;
  log.add_app(AppRecord{.app_instance_id = 1,
                        .app_name = "a",
                        .arrival_time = 0.0,
                        .launch_time = 0.1,
                        .completion_time = 0.5});
  log.add_app(AppRecord{.app_instance_id = 2,
                        .app_name = "b",
                        .arrival_time = 0.2,
                        .launch_time = 0.2,
                        .completion_time = 1.0});
  EXPECT_NEAR(log.avg_app_execution_time(), (0.4 + 0.8) / 2, 1e-12);

  log.add_sched(SchedRecord{.time = 0.1, .ready_tasks = 5, .assigned = 5,
                            .decision_time = 0.01});
  log.add_sched(SchedRecord{.time = 0.2, .ready_tasks = 2, .assigned = 2,
                            .decision_time = 0.03});
  EXPECT_NEAR(log.total_sched_time(), 0.04, 1e-12);
  EXPECT_NEAR(log.avg_sched_overhead_per_app(), 0.02, 1e-12);
}

TEST(TraceLog, TaskRecordDerivedTimes) {
  TaskRecord record{.enqueue_time = 1.0, .start_time = 1.5, .end_time = 2.25};
  EXPECT_DOUBLE_EQ(record.queue_delay(), 0.5);
  EXPECT_DOUBLE_EQ(record.service_time(), 0.75);
}

TEST(TraceLog, EmptyLogMetricsAreZero) {
  TraceLog log;
  EXPECT_EQ(log.avg_app_execution_time(), 0.0);
  EXPECT_EQ(log.avg_sched_overhead_per_app(), 0.0);
  EXPECT_EQ(log.total_sched_time(), 0.0);
}

TEST(TraceLog, JsonSerializationRoundTrips) {
  TraceLog log;
  log.add_task(TaskRecord{.app_instance_id = 3,
                          .app_name = "pd",
                          .task_id = 17,
                          .kernel_name = "FFT",
                          .pe_name = "fft0",
                          .enqueue_time = 0.1,
                          .start_time = 0.2,
                          .end_time = 0.3});
  const json::Value doc = log.to_json();
  const auto& tasks = doc.find("tasks")->as_array();
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].get_string("kernel", ""), "FFT");
  EXPECT_EQ(tasks[0].get_string("pe", ""), "fft0");
  EXPECT_EQ(tasks[0].get_int("task_id", -1), 17);
  EXPECT_DOUBLE_EQ(tasks[0].get_double("start", 0.0), 0.2);
  // Full file round-trip.
  const std::string path = ::testing::TempDir() + "/cedr_trace_test.json";
  ASSERT_TRUE(log.write_json(path).ok());
  auto parsed = json::parse_file(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, doc);
}

TEST(TraceLog, CsvExportHasHeaderAndRows) {
  TraceLog log;
  log.add_task(TaskRecord{.app_instance_id = 1,
                          .app_name = "x",
                          .task_id = 2,
                          .kernel_name = "ZIP",
                          .pe_name = "cpu0"});
  const std::string path = ::testing::TempDir() + "/cedr_trace_test.csv";
  ASSERT_TRUE(log.write_task_csv(path).ok());
  std::ifstream in(path);
  std::string header, row;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, row));
  EXPECT_NE(header.find("kernel"), std::string::npos);
  EXPECT_NE(row.find("ZIP"), std::string::npos);
  EXPECT_NE(row.find("cpu0"), std::string::npos);
}

TEST(TraceLog, ClearEmptiesEverything) {
  TraceLog log;
  log.add_task(TaskRecord{});
  log.add_app(AppRecord{});
  log.add_sched(SchedRecord{});
  log.clear();
  EXPECT_TRUE(log.tasks().empty());
  EXPECT_TRUE(log.apps().empty());
  EXPECT_TRUE(log.sched_rounds().empty());
}

TEST(TraceLog, ConcurrentAppendsAreSafe) {
  TraceLog log;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.add_task(TaskRecord{.app_instance_id = static_cast<uint64_t>(t)});
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(log.tasks().size(),
            static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(LatencyHistogram, BucketZeroHoldsSubMicrosecondAndUpToTwo) {
  LatencyHistogram h;
  h.record(0.0);
  h.record(0.4e-6);   // 0.4 us
  h.record(1.0e-6);   // exactly 1 us
  h.record(1.9e-6);   // just under the first edge
  const auto buckets = h.buckets();
  EXPECT_EQ(buckets[0], 4u);
  for (std::size_t i = 1; i < LatencyHistogram::kBuckets; ++i) {
    EXPECT_EQ(buckets[i], 0u) << "bucket " << i;
  }
}

TEST(LatencyHistogram, EveryBucketEdgeOpensItsBucket) {
  // Bucket i >= 1 covers [2^i, 2^(i+1)) us: the exact power of two lands in
  // the bucket it opens — including when the value arrives as seconds and
  // the *1e6 conversion leaves it one ulp below the edge — and the value
  // just below (outside the 1e-9 snap) stays in the bucket before it.
  for (std::size_t i = 1; i < LatencyHistogram::kBuckets; ++i) {
    const double edge_us = std::ldexp(1.0, static_cast<int>(i));
    LatencyHistogram h;
    h.record(edge_us * 1e-6);              // exact edge, via seconds
    h.record(edge_us * (1.0 - 1e-6) * 1e-6);  // just below the edge
    const auto buckets = h.buckets();
    EXPECT_EQ(buckets[i], 1u) << "edge 2^" << i << " us";
    EXPECT_EQ(buckets[i - 1], 1u) << "below edge 2^" << i << " us";
  }
}

TEST(LatencyHistogram, LastBucketSaturates) {
  LatencyHistogram h;
  h.record(std::ldexp(1.0, 30) * 1e-6);  // 2^30 us, far past the last edge
  h.record(1e6);                         // 10^12 us
  const auto buckets = h.buckets();
  EXPECT_EQ(buckets[LatencyHistogram::kBuckets - 1], 2u);
}

TEST(LatencyHistogram, NegativeAndNanClampToBucketZero) {
  LatencyHistogram h;
  h.record(-1.0);
  h.record(std::nan(""));
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.total_seconds(), 0.0);  // clamped before accumulation
}

TEST(CounterSet, AddGetSnapshot) {
  CounterSet counters;
  EXPECT_EQ(counters.get("missing"), 0u);
  counters.add("tasks");
  counters.add("tasks", 4);
  counters.add("apps");
  EXPECT_EQ(counters.get("tasks"), 5u);
  const auto snapshot = counters.snapshot();
  EXPECT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot.at("apps"), 1u);
  const json::Value doc = counters.to_json();
  EXPECT_EQ(doc.get_int("tasks", 0), 5);
  counters.clear();
  EXPECT_EQ(counters.get("tasks"), 0u);
}

TEST(CounterSet, ConcurrentIncrementsAreExact) {
  CounterSet counters;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counters] {
      for (int i = 0; i < kPerThread; ++i) counters.add("hits");
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counters.get("hits"),
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(CounterSet, HammerMixedNamesWithConcurrentReaders) {
  // Writers race on counter *creation* (first add of each name) while
  // readers snapshot continuously; every increment must survive.
  CounterSet counters;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  constexpr int kNames = 8;
  std::atomic<bool> done{false};
  std::thread reader([&counters, &done] {
    while (!done.load(std::memory_order_relaxed)) {
      (void)counters.snapshot();
      (void)counters.get("name0");
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&counters, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counters.add("name" + std::to_string((t + i) % kNames));
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();
  std::uint64_t total = 0;
  for (const auto& [name, value] : counters.snapshot()) total += value;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace cedr::trace
