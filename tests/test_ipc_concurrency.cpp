// Concurrency tests for the IPC front-end (docs/ipc.md): many clients
// pipelining mixed verbs against one event loop, protocol-limit
// enforcement, admission back-pressure, and shutdown with commands in
// flight. Part of the TSAN tier (tools/run_tsan_tests.sh) — the event
// loop, worker pool and client threads share the reply queues and
// admission counters these tests hammer.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cedr/ipc/framing.h"
#include "cedr/ipc/ipc.h"
#include "cedr/runtime/runtime.h"

namespace cedr::ipc {
namespace {

std::string temp_socket(const char* name) {
  return ::testing::TempDir() + "/cedr_conc_" + name + ".sock";
}

rt::RuntimeConfig small_config() {
  rt::RuntimeConfig config;
  config.platform = platform::host(2);
  return config;
}

/// Raw blocking connect for protocol-level tests the IpcClient API cannot
/// express (malformed input).
int raw_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(IpcConcurrency, EightClientsPipelineMixedVerbs) {
  rt::Runtime runtime(small_config());
  ASSERT_TRUE(runtime.start().ok());
  IpcServer server(runtime, temp_socket("mixed"));
  ASSERT_TRUE(server.start().ok());

  // Each client interleaves cheap loop-thread verbs (STATS, STATUS,
  // METRICS) with a worker-pool verb (SUBMITDAG of a missing file — an ERR,
  // but one that takes the full pool round-trip) in a single pipelined
  // batch, so reply-order bookkeeping is exercised across both paths.
  const std::vector<std::string> batch = {
      "STATS", "SUBMITDAG /nonexistent/dag.json", "STATUS", "METRICS",
      "STATS"};
  constexpr int kClients = 8;
  constexpr int kRounds = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      IpcClient client(server.socket_path());
      for (int round = 0; round < kRounds; ++round) {
        auto replies = client.pipeline(batch);
        if (!replies.ok() || replies->size() != batch.size()) {
          failures.fetch_add(1);
          return;
        }
        // Replies must line up with their commands, in order.
        if ((*replies)[0].rfind("OK uptime_s=", 0) != 0 ||
            (*replies)[1].rfind("ERR", 0) != 0 ||
            (*replies)[2].rfind("OK submitted=", 0) != 0 ||
            (*replies)[3].rfind("OK {", 0) != 0 ||
            (*replies)[4].rfind("OK uptime_s=", 0) != 0) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  server.stop();
  EXPECT_TRUE(runtime.shutdown().ok());
}

TEST(IpcConcurrency, OverlongLineGetsErrThenDisconnect) {
  rt::Runtime runtime(small_config());
  ASSERT_TRUE(runtime.start().ok());
  IpcServer server(runtime, temp_socket("overlong"));
  ASSERT_TRUE(server.start().ok());

  const int fd = raw_connect(server.socket_path());
  ASSERT_GE(fd, 0);
  // One unterminated line past the framer bound. The server must answer
  // `ERR line too long` (not a silently clipped parse) and drop the
  // connection; it stops reading once the overflow latches, so the send
  // side may fail part-way — that is the back-pressure working, not a
  // test failure.
  const std::string blob(LineFramer::kMaxLine + 1024, 'x');
  std::size_t sent = 0;
  while (sent < blob.size()) {
    const ssize_t n =
        ::send(fd, blob.data() + sent, blob.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string reply;
  char buf[256];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;  // EOF: server closed after the error reply
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(reply, "ERR line too long\n");

  server.stop();
  EXPECT_TRUE(runtime.shutdown().ok());
}

TEST(IpcConcurrency, SaturationRepliesBusyAndCounts) {
  rt::Runtime runtime(small_config());
  ASSERT_TRUE(runtime.start().ok());

  // Park one app on a latch so the runtime reports exactly one in-flight
  // instance, then bound admissions at one: the next submission must be
  // refused with BUSY, not queued.
  std::mutex latch_mutex;
  std::condition_variable latch_cv;
  bool release = false;
  auto blocker = runtime.submit_api("blocker", [&] {
    std::unique_lock lock(latch_mutex);
    latch_cv.wait(lock, [&] { return release; });
  });
  ASSERT_TRUE(blocker.ok());

  IpcServerConfig config;
  config.max_inflight_apps = 1;
  IpcServer server(runtime, temp_socket("busy"), "", config);
  ASSERT_TRUE(server.start().ok());

  IpcClient client(server.socket_path());
  auto refused = client.submit_dag("/nonexistent/dag.json");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(runtime.counters().get("ipc.rejected_total"), 1u);
  EXPECT_GE(runtime.metrics().gauge("ipc.rejected_total"), 1.0);

  {
    std::lock_guard lock(latch_mutex);
    release = true;
  }
  latch_cv.notify_all();
  ASSERT_TRUE(runtime.wait_all(30.0).ok());

  // Capacity freed: the same submission now passes admission and fails
  // only on the missing file (a server-side ERR, not BUSY).
  auto admitted = client.submit_dag("/nonexistent/dag.json");
  ASSERT_FALSE(admitted.ok());
  EXPECT_EQ(admitted.status().code(), StatusCode::kInternal);

  server.stop();
  EXPECT_TRUE(runtime.shutdown().ok());
}

TEST(IpcConcurrency, StopWithCommandsInFlight) {
  rt::Runtime runtime(small_config());
  ASSERT_TRUE(runtime.start().ok());
  IpcServer server(runtime, temp_socket("stopmid"));
  ASSERT_TRUE(server.start().ok());

  // Clients keep deep batches in flight while the main thread tears the
  // server down. Every outcome is acceptable for the clients — completed
  // batches or connection errors — as long as stop() returns and nothing
  // crashes or deadlocks.
  std::atomic<bool> stop{false};
  const std::vector<std::string> batch(32, "STATS");
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      IpcClient client(server.socket_path());
      while (!stop.load()) {
        if (!client.pipeline(batch).ok()) return;  // server went away
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.stop();
  stop.store(true);
  for (auto& t : clients) t.join();

  EXPECT_TRUE(runtime.shutdown().ok());
}

}  // namespace
}  // namespace cedr::ipc
