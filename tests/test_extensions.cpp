// Tests for the ecosystem extensions beyond the paper's core: MET/RANDOM
// schedulers, runtime-configuration files, the MMIO address bus, and the
// big.LITTLE future-work platform.
#include <gtest/gtest.h>

#include "cedr/cedr.h"
#include "cedr/platform/mmio_bus.h"
#include "cedr/runtime/runtime.h"
#include "cedr/sched/heuristics.h"
#include "cedr/sim/model.h"
#include "cedr/sim/simulator.h"

namespace cedr {
namespace {

// ---- MET / RANDOM schedulers ----------------------------------------------

sched::ReadyTask fft_task(std::uint64_t key, std::size_t size = 1024) {
  return sched::ReadyTask{.task_key = key,
                          .kernel = platform::KernelId::kFft,
                          .problem_size = size,
                          .data_bytes = 2 * size * 8};
}

TEST(MetScheduler, AlwaysPicksCheapestPeIgnoringQueues) {
  sched::MetScheduler met;
  platform::PlatformConfig plat = platform::zcu102(2, 1, 0);
  // Make the accelerator the cheapest FFT executor by a wide margin.
  plat.costs.set(platform::KernelId::kFft, platform::PeClass::kFftAccel,
                 {.fixed_s = 1e-9});
  plat.costs.set_transfer(platform::PeClass::kFftAccel, 0.0, 0.0);
  std::vector<sched::PeState> pes;
  for (std::size_t i = 0; i < plat.pes.size(); ++i) {
    pes.push_back(sched::PeState{.pe_index = i, .cls = plat.pes[i].cls});
  }
  std::vector<sched::ReadyTask> ready;
  for (std::uint64_t i = 0; i < 20; ++i) ready.push_back(fft_task(i));
  const sched::ScheduleContext ctx{.now = 0.0, .costs = &plat.costs};
  const auto result = met.schedule(ready, pes, ctx);
  ASSERT_EQ(result.assignments.size(), 20u);
  for (const auto& a : result.assignments) {
    // Every task piles onto the single "fastest" PE — MET's pathology.
    EXPECT_EQ(plat.pes[a.pe_index].cls, platform::PeClass::kFftAccel);
  }
}

TEST(RandomScheduler, CoversCompatiblePesAndIsSeeded) {
  platform::PlatformConfig plat = platform::zcu102(3, 1, 0);
  auto make_pes = [&] {
    std::vector<sched::PeState> pes;
    for (std::size_t i = 0; i < plat.pes.size(); ++i) {
      pes.push_back(sched::PeState{.pe_index = i, .cls = plat.pes[i].cls});
    }
    return pes;
  };
  std::vector<sched::ReadyTask> ready;
  for (std::uint64_t i = 0; i < 400; ++i) ready.push_back(fft_task(i, 256));
  const sched::ScheduleContext ctx{.now = 0.0, .costs = &plat.costs};

  sched::RandomScheduler a(7), b(7), c(8);
  auto pes1 = make_pes();
  auto pes2 = make_pes();
  auto pes3 = make_pes();
  const auto ra = a.schedule(ready, pes1, ctx);
  const auto rb = b.schedule(ready, pes2, ctx);
  const auto rc = c.schedule(ready, pes3, ctx);
  ASSERT_EQ(ra.assignments.size(), 400u);
  // Same seed -> identical assignment; different seed -> diverges.
  bool same_seed_equal = true;
  bool diff_seed_equal = true;
  std::vector<int> hits(plat.pes.size(), 0);
  for (std::size_t i = 0; i < ra.assignments.size(); ++i) {
    same_seed_equal &= ra.assignments[i].pe_index == rb.assignments[i].pe_index;
    diff_seed_equal &= ra.assignments[i].pe_index == rc.assignments[i].pe_index;
    ++hits[ra.assignments[i].pe_index];
  }
  EXPECT_TRUE(same_seed_equal);
  EXPECT_FALSE(diff_seed_equal);
  // All four compatible PEs (3 CPU + FFT accel) get a fair share.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_GT(hits[i], 50);
}

TEST(ExtensionSchedulers, AvailableFromFactoryAndSim) {
  EXPECT_TRUE(sched::make_scheduler("MET").ok());
  EXPECT_TRUE(sched::make_scheduler("RANDOM").ok());
  // They must drive the emulator end to end.
  const sim::SimApp pd = sim::make_pulse_doppler_model();
  const sim::Arrival arrival{&pd, 0.0};
  for (const char* name : {"MET", "RANDOM"}) {
    sim::SimConfig config;
    config.platform = platform::zcu102(3, 1, 0);
    config.scheduler = name;
    const auto metrics = sim::simulate(config, {&arrival, 1});
    ASSERT_TRUE(metrics.ok()) << name;
    EXPECT_EQ(metrics->apps, 1u);
  }
}

// ---- Runtime configuration files -------------------------------------------

TEST(RuntimeConfigFile, RoundTrips) {
  rt::RuntimeConfig config;
  config.platform = platform::jetson(5, 1);
  config.scheduler = "ETF";
  config.scheduler_period_s = 1e-3;
  config.enable_counters = false;
  auto parsed = rt::RuntimeConfig::from_json(config.to_json());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->scheduler, "ETF");
  EXPECT_DOUBLE_EQ(parsed->scheduler_period_s, 1e-3);
  EXPECT_FALSE(parsed->enable_counters);
  EXPECT_EQ(parsed->platform.pes.size(), config.platform.pes.size());
  EXPECT_EQ(parsed->platform.total_app_cores, 7u);
}

TEST(RuntimeConfigFile, LoadsFromDiskAndStartsRuntime) {
  rt::RuntimeConfig config;
  config.platform = platform::host(2, 1);
  config.scheduler = "HEFT_RT";
  const std::string path = ::testing::TempDir() + "/cedr_rtcfg.json";
  ASSERT_TRUE(json::write_file(path, config.to_json()).ok());
  auto loaded = rt::RuntimeConfig::load(path);
  ASSERT_TRUE(loaded.ok());
  rt::Runtime runtime(*std::move(loaded));
  ASSERT_TRUE(runtime.start().ok());
  EXPECT_TRUE(runtime.shutdown().ok());
}

TEST(RuntimeConfigFile, RejectsBadDocuments) {
  EXPECT_FALSE(rt::RuntimeConfig::from_json(json::Value(3)).ok());
  EXPECT_FALSE(rt::RuntimeConfig::from_json(json::Object{}).ok());
  rt::RuntimeConfig config;
  config.platform = platform::host(1);
  json::Value doc = config.to_json();
  doc.as_object()["scheduler"] = json::Value("NOPE");
  EXPECT_FALSE(rt::RuntimeConfig::from_json(doc).ok());
  doc = config.to_json();
  doc.as_object()["scheduler_period_s"] = json::Value(-1.0);
  EXPECT_FALSE(rt::RuntimeConfig::from_json(doc).ok());
  EXPECT_EQ(rt::RuntimeConfig::load("/nope.json").status().code(),
            StatusCode::kNotFound);
}

// ---- MMIO bus ---------------------------------------------------------------

TEST(MmioBus, MapsAndDecodesDevices) {
  platform::MmioBus bus;
  ASSERT_TRUE(bus.map(0xA0000000,
                      std::make_unique<platform::FftDevice>()).ok());
  ASSERT_TRUE(bus.map(0xA0001000,
                      std::make_unique<platform::ZipDevice>()).ok());
  EXPECT_EQ(bus.size(), 2u);
  EXPECT_NE(bus.at(0xA0000000), nullptr);
  EXPECT_EQ(bus.at(0xA0002000), nullptr);
  EXPECT_EQ(bus.bases(),
            (std::vector<std::uint64_t>{0xA0000000, 0xA0001000}));
}

TEST(MmioBus, RejectsBadMappings) {
  platform::MmioBus bus;
  EXPECT_FALSE(bus.map(0xA0000100,  // not window-aligned
                       std::make_unique<platform::FftDevice>()).ok());
  ASSERT_TRUE(bus.map(0xA0000000,
                      std::make_unique<platform::FftDevice>()).ok());
  EXPECT_EQ(bus.map(0xA0000000, std::make_unique<platform::FftDevice>())
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(bus.map(0xA0001000, nullptr).ok());
}

TEST(MmioBus, AddressedRegisterAccessDrivesDevice) {
  platform::MmioBus bus;
  constexpr std::uint64_t kBase = 0xA0000000;
  ASSERT_TRUE(bus.map(kBase, std::make_unique<platform::FftDevice>()).ok());

  // Stream operands via the device handle (DMA is not address-mapped),
  // but configure and poll purely by absolute address.
  std::vector<cfloat> signal(64, cfloat(1.0f, 0.0f));
  auto* device = bus.at(kBase);
  ASSERT_TRUE(device
                  ->dma_write_a({reinterpret_cast<const std::uint8_t*>(
                                     signal.data()),
                                 signal.size() * sizeof(cfloat)})
                  .ok());
  const auto reg = [&](platform::DeviceReg r) {
    return kBase + static_cast<std::uint64_t>(r) * platform::kRegisterBytes;
  };
  ASSERT_TRUE(bus.write_word(reg(platform::DeviceReg::kSize), 64).ok());
  ASSERT_TRUE(bus.write_word(reg(platform::DeviceReg::kMode), 0).ok());
  ASSERT_TRUE(bus.write_word(reg(platform::DeviceReg::kControl),
                             platform::kCmdStart).ok());
  StatusOr<std::uint32_t> status = platform::kStatusBusy;
  int spins = 0;
  while (status.ok() && *status == platform::kStatusBusy && spins++ < 1000) {
    status = bus.read_word(reg(platform::DeviceReg::kStatus));
  }
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(*status, platform::kStatusDone);
}

TEST(MmioBus, AccessErrorsAreDecoded) {
  platform::MmioBus bus;
  ASSERT_TRUE(bus.map(0xA0000000,
                      std::make_unique<platform::FftDevice>()).ok());
  EXPECT_EQ(bus.read_word(0xB0000000).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(bus.read_word(0xA0000002).status().code(),
            StatusCode::kInvalidArgument);  // misaligned
  EXPECT_EQ(bus.read_word(0xA0000100).status().code(),
            StatusCode::kOutOfRange);  // beyond the register file
  EXPECT_EQ(bus.write_word(0xA0000004, 1).code(),
            StatusCode::kInvalidArgument);  // status register is read-only
}

// ---- big.LITTLE future-work platform ---------------------------------------

TEST(BigLittle, PresetShapeAndValidation) {
  const auto plat = platform::biglittle(1, 4, 2);
  EXPECT_TRUE(plat.validate().ok());
  EXPECT_EQ(plat.count(platform::PeClass::kCpu), 5u);
  EXPECT_EQ(plat.count(platform::PeClass::kFftAccel), 2u);
  EXPECT_EQ(plat.total_app_cores, 5u);
  std::size_t little = 0;
  for (const auto& pe : plat.pes) {
    if (pe.speed_factor < 1.0) ++little;
  }
  EXPECT_EQ(little, 4u);
  // speed_factor survives the JSON round trip.
  auto parsed = platform::PlatformConfig::from_json(plat.to_json());
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->pes[1].speed_factor, 0.45);
}

TEST(BigLittle, SchedulersSeeSlowerLittleCores) {
  // EFT must prefer the big core until its queue grows long enough.
  const auto plat = platform::biglittle(1, 1, 0);
  std::vector<sched::PeState> pes;
  for (std::size_t i = 0; i < plat.pes.size(); ++i) {
    pes.push_back(sched::PeState{.pe_index = i,
                                 .cls = plat.pes[i].cls,
                                 .speed = plat.pes[i].speed_factor});
  }
  std::vector<sched::ReadyTask> one{fft_task(0, 256)};
  const sched::ScheduleContext ctx{.now = 0.0, .costs = &plat.costs};
  sched::EftScheduler eft;
  const auto result = eft.schedule(one, pes, ctx);
  ASSERT_EQ(result.assignments.size(), 1u);
  EXPECT_EQ(result.assignments[0].pe_index, 0u);  // the big core
}

TEST(BigLittle, LittleCoresAbsorbAcceleratorManagement) {
  // The paper's §VI hypothesis: lightweight cores added for worker-thread
  // management relieve the accelerator-management contention of
  // accelerator-rich configurations. Adding 4 LITTLE cores to a 2-big-core
  // + 8-FFT platform must reduce execution time even though each LITTLE
  // core has under half the throughput.
  // Non-blocking issue exposes the parallelism the extra cores serve.
  const sim::SimApp ld =
      sim::make_lane_detection_model(16, /*nonblocking=*/true);
  const sim::Arrival arrival{&ld, 0.0};
  double exec[2] = {0.0, 0.0};
  int idx = 0;
  for (const std::size_t little : {0u, 4u}) {
    sim::SimConfig config;
    config.platform = platform::biglittle(2, little, 8);
    config.scheduler = "EFT";
    const auto metrics = sim::simulate(config, {&arrival, 1});
    ASSERT_TRUE(metrics.ok());
    exec[idx++] = metrics->avg_execution_time;
  }
  EXPECT_LT(exec[1], 0.9 * exec[0]);
}

TEST(BigLittle, RuntimeExecutesOnLittleCores) {
  rt::RuntimeConfig config;
  config.platform = platform::biglittle(1, 2, 0);
  config.platform.name = "host-biglittle";
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  auto instance = runtime.submit_api("bl", [] {
    std::vector<cedr_cplx> buf(128);
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(CEDR_FFT(buf.data(), buf.data(), 128).ok());
    }
  });
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(runtime.wait_all(30.0).ok());
  EXPECT_TRUE(runtime.shutdown().ok());
  EXPECT_EQ(runtime.trace_log().tasks().size(), 12u);
}

}  // namespace
}  // namespace cedr
