// Unit + property tests for the JSON library.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "cedr/common/rng.h"
#include "cedr/json/json.h"

namespace cedr::json {
namespace {

TEST(JsonParse, Literals) {
  EXPECT_TRUE(parse("null")->is_null());
  EXPECT_TRUE(parse("true")->as_bool());
  EXPECT_FALSE(parse("false")->as_bool());
}

TEST(JsonParse, Integers) {
  auto v = parse("42");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_int());
  EXPECT_EQ(v->as_int(), 42);
  EXPECT_EQ(parse("-7")->as_int(), -7);
  EXPECT_EQ(parse("0")->as_int(), 0);
}

TEST(JsonParse, Doubles) {
  EXPECT_DOUBLE_EQ(parse("3.5")->as_double(), 3.5);
  EXPECT_DOUBLE_EQ(parse("-2.5e3")->as_double(), -2500.0);
  EXPECT_DOUBLE_EQ(parse("1E-3")->as_double(), 0.001);
  EXPECT_TRUE(parse("3.5")->is_double());
}

TEST(JsonParse, IntOverflowFallsBackToDouble) {
  auto v = parse("99999999999999999999999999");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_double());
  EXPECT_GT(v->as_double(), 9e25);
}

TEST(JsonParse, Strings) {
  EXPECT_EQ(parse(R"("hello")")->as_string(), "hello");
  EXPECT_EQ(parse(R"("a\"b\\c\/d\b\f\n\r\t")")->as_string(),
            "a\"b\\c/d\b\f\n\r\t");
}

TEST(JsonParse, UnicodeEscapes) {
  EXPECT_EQ(parse(R"("A")")->as_string(), "A");
  EXPECT_EQ(parse(R"("é")")->as_string(), "\xc3\xa9");        // é
  EXPECT_EQ(parse(R"("€")")->as_string(), "\xe2\x82\xac");    // €
  EXPECT_EQ(parse(R"("😀")")->as_string(),
            "\xf0\x9f\x98\x80");  // 😀 via surrogate pair
}

TEST(JsonParse, Arrays) {
  auto v = parse("[1, 2.5, \"x\", null, [true]]");
  ASSERT_TRUE(v.ok());
  const Array& a = v->as_array();
  ASSERT_EQ(a.size(), 5u);
  EXPECT_EQ(a[0].as_int(), 1);
  EXPECT_DOUBLE_EQ(a[1].as_double(), 2.5);
  EXPECT_EQ(a[2].as_string(), "x");
  EXPECT_TRUE(a[3].is_null());
  EXPECT_TRUE(a[4].as_array()[0].as_bool());
}

TEST(JsonParse, Objects) {
  auto v = parse(R"({"name": "cedr", "pes": 4, "nested": {"k": [1,2]}})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->get_string("name", ""), "cedr");
  EXPECT_EQ(v->get_int("pes", 0), 4);
  ASSERT_NE(v->find("nested"), nullptr);
  EXPECT_EQ(v->find("nested")->find("k")->as_array().size(), 2u);
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(parse("[]")->as_array().empty());
  EXPECT_TRUE(parse("{}")->as_object().empty());
  EXPECT_TRUE(parse(" [ ] ")->as_array().empty());
}

TEST(JsonParse, WhitespaceTolerated) {
  auto v = parse("  {\n \"a\" :\t1 , \"b\" : [ 1 , 2 ] }\r\n");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->get_int("a", 0), 1);
}

struct BadCase {
  const char* name;
  const char* text;
};

class JsonParseErrors : public ::testing::TestWithParam<BadCase> {};

TEST_P(JsonParseErrors, Rejected) {
  const auto result = parse(GetParam().text);
  EXPECT_FALSE(result.ok()) << GetParam().name;
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, JsonParseErrors,
    ::testing::Values(
        BadCase{"empty", ""}, BadCase{"bare_brace", "{"},
        BadCase{"trailing", "1 2"}, BadCase{"bad_literal", "nul"},
        BadCase{"unterminated_string", "\"abc"},
        BadCase{"unterminated_array", "[1, 2"},
        BadCase{"missing_colon", "{\"a\" 1}"},
        BadCase{"missing_comma", "[1 2]"},
        BadCase{"control_char", "\"a\nb\""},
        BadCase{"bad_escape", R"("\q")"},
        BadCase{"bad_hex", R"("\u00zz")"},
        BadCase{"lone_high_surrogate", R"("\ud800")"},
        BadCase{"lone_low_surrogate", R"("\udc00")"},
        BadCase{"bad_number", "-"}, BadCase{"bad_number2", "1.2.3"},
        BadCase{"nonstring_key", "{1: 2}"},
        BadCase{"trailing_comma_obj", "{\"a\":1,}"}),
    [](const auto& info) { return info.param.name; });

TEST(JsonParse, ErrorsReportLineAndColumn) {
  const auto result = parse("{\n  \"a\": nul\n}");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos)
      << result.status().message();
}

TEST(JsonParse, DeepNestingRejected) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(parse(deep).ok());
}

TEST(JsonDump, CompactAndPretty) {
  Value v = Object{{"b", Value(1)}, {"a", Value(Array{Value(true)})}};
  EXPECT_EQ(v.dump(), R"({"a":[true],"b":1})");
  const std::string pretty = v.dump_pretty();
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(*parse(pretty), v);
}

TEST(JsonDump, EscapesSpecialCharacters) {
  Value v = std::string("a\"b\\c\nd\x01");
  const std::string out = v.dump();
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
  EXPECT_EQ(parse(out)->as_string(), v.as_string());
}

TEST(JsonDump, DoubleKeepsDecimalPoint) {
  EXPECT_EQ(Value(2.0).dump(), "2.0");
  EXPECT_TRUE(parse(Value(2.0).dump())->is_double());
}

TEST(JsonDump, NonFiniteBecomesNull) {
  EXPECT_EQ(Value(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Value(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
}

TEST(JsonValue, TypedGettersWithFallbacks) {
  auto v = parse(R"({"i": 3, "d": 1.5, "s": "x", "b": true})");
  EXPECT_EQ(v->get_int("i", -1), 3);
  EXPECT_EQ(v->get_int("missing", -1), -1);
  EXPECT_DOUBLE_EQ(v->get_double("d", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(v->get_double("i", 0.0), 3.0);  // int promotes
  EXPECT_EQ(v->get_string("s", "y"), "x");
  EXPECT_EQ(v->get_string("i", "y"), "y");  // wrong type -> fallback
  EXPECT_TRUE(v->get_bool("b", false));
}

TEST(JsonValue, NumericCrossTypeEquality) {
  EXPECT_EQ(Value(3), Value(3.0));
  EXPECT_FALSE(Value(3) == Value(3.5));
}

TEST(JsonFile, RoundTripThroughDisk) {
  const std::string path = ::testing::TempDir() + "/cedr_json_test.json";
  Value v = Object{{"x", Value(Array{Value(1), Value("two"), Value(3.5)})}};
  ASSERT_TRUE(write_file(path, v).ok());
  auto back = parse_file(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, v);
}

TEST(JsonFile, MissingFileIsNotFound) {
  EXPECT_EQ(parse_file("/nonexistent/path.json").status().code(),
            StatusCode::kNotFound);
}

// Property: random documents survive dump -> parse round-trips exactly.
Value random_value(Rng& rng, int depth) {
  const std::uint64_t pick = rng.next_below(depth >= 3 ? 4 : 6);
  switch (pick) {
    case 0: return Value(nullptr);
    case 1: return Value(rng.next_below(2) == 1);
    case 2: return Value(static_cast<std::int64_t>(rng.next_u64() >> 16));
    case 3: {
      std::string s;
      const auto len = rng.next_below(12);
      for (std::uint64_t i = 0; i < len; ++i) {
        s += static_cast<char>(rng.next_below(94) + 33);
      }
      return Value(std::move(s));
    }
    case 4: {
      Array a;
      const auto len = rng.next_below(5);
      for (std::uint64_t i = 0; i < len; ++i) {
        a.push_back(random_value(rng, depth + 1));
      }
      return Value(std::move(a));
    }
    default: {
      Object o;
      const auto len = rng.next_below(5);
      for (std::uint64_t i = 0; i < len; ++i) {
        o.emplace("k" + std::to_string(i), random_value(rng, depth + 1));
      }
      return Value(std::move(o));
    }
  }
}

class JsonRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(JsonRoundTripProperty, DumpParseIdentity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  for (int i = 0; i < 50; ++i) {
    const Value v = random_value(rng, 0);
    auto compact = parse(v.dump());
    ASSERT_TRUE(compact.ok()) << v.dump();
    EXPECT_EQ(*compact, v);
    auto pretty = parse(v.dump_pretty());
    ASSERT_TRUE(pretty.ok());
    EXPECT_EQ(*pretty, v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripProperty, ::testing::Range(0, 8));

}  // namespace
}  // namespace cedr::json
