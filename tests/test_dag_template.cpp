// Tests for compiled DAG templates and the content-hash template cache
// (apps/dag_template.h), plus the fast-path submission plumbing they feed:
// batched DagSubmission and slab-recycled app instances
// (docs/runtime_lifecycle.md).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cedr/apps/dag_template.h"
#include "cedr/apps/executable_dag.h"
#include "cedr/cedr.h"
#include "cedr/runtime/runtime.h"

namespace cedr {
namespace {

constexpr const char* kFilterDag = R"({
  "app_name": "fd_filter",
  "buffers": {
    "signal":   {"elems": 256, "kind": "cfloat"},
    "mask":     {"elems": 256, "kind": "cfloat"},
    "filtered": {"elems": 256, "kind": "cfloat"}
  },
  "tasks": [
    {"id": 0, "name": "fwd", "kernel": "FFT",
     "args": {"in": "signal", "out": "signal"}, "predecessors": []},
    {"id": 1, "name": "apply", "kernel": "ZIP",
     "args": {"a": "signal", "b": "mask", "out": "filtered", "op": 0},
     "predecessors": [0]},
    {"id": 2, "name": "back", "kernel": "IFFT",
     "args": {"in": "filtered", "out": "filtered"}, "predecessors": [1]},
    {"id": 3, "name": "post", "kernel": "GENERIC",
     "args": {"work_ns": 5000}, "predecessors": [2]}
  ]
})";

/// A small valid single-task document whose text varies with `work_ns`, for
/// filling caches with distinct entries.
std::string generic_dag(std::size_t work_ns) {
  return R"({"app_name":"gen","tasks":[{"id":0,"kernel":"GENERIC",
             "args":{"work_ns":)" +
         std::to_string(work_ns) + R"(}}]})";
}

TEST(TemplateCache, SameTextSharesOneTemplate) {
  apps::TemplateCache cache(4);
  auto first = cache.get_or_compile(kFilterDag);
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  auto second = cache.get_or_compile(kFilterDag);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // literally the same compilation
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(TemplateCache, MutatedDocumentCompilesFresh) {
  apps::TemplateCache cache(4);
  auto original = cache.get_or_compile(generic_dag(1000));
  auto mutated = cache.get_or_compile(generic_dag(2000));
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(mutated.ok());
  EXPECT_NE(original->get(), mutated->get());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(TemplateCache, CollidingHashesAreDistinguishedByText) {
  // Degenerate hash: every document collides. The full-text compare on the
  // collision chain must still keep the entries apart.
  apps::TemplateCache cache(4, [](std::string_view) -> std::uint64_t {
    return 42;
  });
  const std::string doc_a = generic_dag(1000);
  const std::string doc_b = generic_dag(2000);
  auto a1 = cache.get_or_compile(doc_a);
  auto b1 = cache.get_or_compile(doc_b);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(b1.ok());
  EXPECT_NE(a1->get(), b1->get());
  // Both stay retrievable as hits despite sharing one hash bucket.
  auto a2 = cache.get_or_compile(doc_a);
  auto b2 = cache.get_or_compile(doc_b);
  ASSERT_TRUE(a2.ok());
  ASSERT_TRUE(b2.ok());
  EXPECT_EQ(a1->get(), a2->get());
  EXPECT_EQ(b1->get(), b2->get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 2u);
}

TEST(TemplateCache, LruEvictionStaysWithinCapacity) {
  apps::TemplateCache cache(2);
  ASSERT_TRUE(cache.get_or_compile(generic_dag(1)).ok());
  ASSERT_TRUE(cache.get_or_compile(generic_dag(2)).ok());
  // Touch doc 1 so doc 2 becomes least recently used.
  ASSERT_TRUE(cache.get_or_compile(generic_dag(1)).ok());
  ASSERT_TRUE(cache.get_or_compile(generic_dag(3)).ok());  // evicts doc 2
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // Doc 1 survived (hit); doc 2 must recompile (miss).
  const auto before = cache.stats();
  ASSERT_TRUE(cache.get_or_compile(generic_dag(1)).ok());
  ASSERT_TRUE(cache.get_or_compile(generic_dag(2)).ok());
  const auto after = cache.stats();
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses + 1);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(TemplateCache, CompileFailuresAreNotCached) {
  apps::TemplateCache cache(4);
  constexpr const char* kBad = R"({"app_name":"x","tasks":[{"id":0,
      "kernel":"FFT","args":{"in":"nope","out":"nope"}}]})";
  EXPECT_FALSE(cache.get_or_compile(kBad).ok());
  EXPECT_FALSE(cache.get_or_compile("not json at all").ok());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(DagTemplate, InstancesShareSkeletonButNotBuffers) {
  auto doc = json::parse(kFilterDag);
  ASSERT_TRUE(doc.ok());
  auto tmpl = apps::DagTemplate::compile(*doc);
  ASSERT_TRUE(tmpl.ok()) << tmpl.status().to_string();
  apps::DagTemplate::Instance a = (*tmpl)->instantiate();
  apps::DagTemplate::Instance b = (*tmpl)->instantiate();
  EXPECT_EQ(a.descriptor.get(), b.descriptor.get());  // shared skeleton
  EXPECT_NE(a.buffers.get(), b.buffers.get());        // private buffers
  EXPECT_EQ(a.impls.size(), a.descriptor->graph.size());
  // Writing one instance's buffers must not leak into the other.
  (*a.buffers->cfloat_buffer("signal"))[0] = cedr_cplx(9.0f, 0.0f);
  EXPECT_EQ((*b.buffers->cfloat_buffer("signal"))[0].real(), 0.0f);
}

TEST(DagTemplate, InstanceRunsEndToEndWithCorrectBuffers) {
  auto doc = json::parse(kFilterDag);
  ASSERT_TRUE(doc.ok());
  auto tmpl = apps::DagTemplate::compile(*doc);
  ASSERT_TRUE(tmpl.ok());
  apps::DagTemplate::Instance inst = (*tmpl)->instantiate();

  auto* signal = inst.buffers->cfloat_buffer("signal");
  auto* mask = inst.buffers->cfloat_buffer("mask");
  ASSERT_NE(signal, nullptr);
  (*signal)[3] = cedr_cplx(1.0f, 0.0f);
  const std::vector<cfloat> original = *signal;
  for (auto& v : *mask) v = cedr_cplx(1.0f, 0.0f);

  rt::RuntimeConfig config;
  config.platform = platform::host(2, 1);
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  auto id = runtime.submit_dag(rt::DagSubmission{
      .descriptor = inst.descriptor, .impls = std::move(inst.impls)});
  ASSERT_TRUE(id.ok()) << id.status().to_string();
  ASSERT_TRUE(runtime.wait_all(30.0).ok());
  EXPECT_TRUE(runtime.shutdown().ok());

  const auto* filtered = inst.buffers->cfloat_buffer("filtered");
  ASSERT_NE(filtered, nullptr);
  EXPECT_LT(max_abs_diff(*filtered, original), 1e-4f);
}

TEST(DagSubmission, BatchReportsPerElementStatus) {
  auto doc = json::parse(kFilterDag);
  ASSERT_TRUE(doc.ok());
  auto tmpl = apps::DagTemplate::compile(*doc);
  ASSERT_TRUE(tmpl.ok());

  rt::RuntimeConfig config;
  config.platform = platform::host(2, 1);
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());

  std::vector<rt::DagSubmission> batch;
  apps::DagTemplate::Instance good1 = (*tmpl)->instantiate();
  batch.push_back(rt::DagSubmission{.descriptor = good1.descriptor,
                                    .impls = std::move(good1.impls)});
  batch.push_back(rt::DagSubmission{});  // null descriptor: must fail alone
  apps::DagTemplate::Instance good2 = (*tmpl)->instantiate();
  batch.push_back(rt::DagSubmission{.descriptor = good2.descriptor,
                                    .impls = std::move(good2.impls)});

  auto results = runtime.submit_dag_batch(std::move(batch));
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok()) << results[0].status().to_string();
  EXPECT_FALSE(results[1].ok());
  EXPECT_TRUE(results[2].ok());
  EXPECT_NE(*results[0], *results[2]);  // distinct instance ids
  ASSERT_TRUE(runtime.wait_all(30.0).ok());
  EXPECT_TRUE(runtime.shutdown().ok());
  EXPECT_EQ(runtime.trace_log().tasks().size(), 8u);  // two 4-task DAGs ran
}

TEST(DagSubmission, RecycledInstancesNeverResurrectStaleState) {
  // Sequential waves of submissions drive app instances (and their slab-
  // allocated task blocks) through the recycle pool repeatedly. Every wave
  // seeds a distinct impulse position and amplitude: a recycled instance
  // carrying any stale plan, impl, or counter state would corrupt the
  // filtered output or hang wait_all.
  auto doc = json::parse(kFilterDag);
  ASSERT_TRUE(doc.ok());
  auto tmpl = apps::DagTemplate::compile(*doc);
  ASSERT_TRUE(tmpl.ok());

  rt::RuntimeConfig config;
  config.platform = platform::host(2, 1);
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());

  constexpr std::size_t kWaves = 8;
  constexpr std::size_t kPerWave = 4;
  for (std::size_t wave = 0; wave < kWaves; ++wave) {
    std::vector<apps::DagTemplate::Instance> instances;
    std::vector<rt::DagSubmission> batch;
    for (std::size_t i = 0; i < kPerWave; ++i) {
      apps::DagTemplate::Instance inst = (*tmpl)->instantiate();
      const std::size_t pos = (wave * kPerWave + i) % 256;
      const float amp = static_cast<float>(wave + i + 1);
      (*inst.buffers->cfloat_buffer("signal"))[pos] = cedr_cplx(amp, 0.0f);
      for (auto& v : *inst.buffers->cfloat_buffer("mask")) {
        v = cedr_cplx(1.0f, 0.0f);
      }
      batch.push_back(rt::DagSubmission{.descriptor = inst.descriptor,
                                        .impls = std::move(inst.impls)});
      instances.push_back(std::move(inst));
    }
    for (const auto& result : runtime.submit_dag_batch(std::move(batch))) {
      ASSERT_TRUE(result.ok()) << result.status().to_string();
    }
    ASSERT_TRUE(runtime.wait_all(30.0).ok());  // forces recycling each wave
    for (std::size_t i = 0; i < kPerWave; ++i) {
      const std::size_t pos = (wave * kPerWave + i) % 256;
      const float amp = static_cast<float>(wave + i + 1);
      const auto& filtered = *instances[i].buffers->cfloat_buffer("filtered");
      for (std::size_t e = 0; e < filtered.size(); ++e) {
        const float expect = e == pos ? amp : 0.0f;
        ASSERT_NEAR(filtered[e].real(), expect, 1e-3f)
            << "wave " << wave << " instance " << i << " elem " << e;
        ASSERT_NEAR(filtered[e].imag(), 0.0f, 1e-3f);
      }
    }
  }
  EXPECT_TRUE(runtime.shutdown().ok());
  EXPECT_EQ(runtime.trace_log().tasks().size(), kWaves * kPerWave * 4);
}

TEST(DagSubmission, LegacyDescriptorPathStillWorks) {
  // submit_dag(shared_ptr) — the pre-template contract where impls ride on
  // the descriptor itself — must keep working for instantiate_dag users.
  auto doc = json::parse(kFilterDag);
  ASSERT_TRUE(doc.ok());
  auto dag = apps::instantiate_dag(*doc);
  ASSERT_TRUE(dag.ok());
  auto* mask = dag->buffers->cfloat_buffer("mask");
  for (auto& v : *mask) v = cedr_cplx(1.0f, 0.0f);
  rt::RuntimeConfig config;
  config.platform = platform::host(1);
  rt::Runtime runtime(config);
  ASSERT_TRUE(runtime.start().ok());
  ASSERT_TRUE(runtime.submit_dag(dag->descriptor).ok());
  ASSERT_TRUE(runtime.wait_all(30.0).ok());
  EXPECT_TRUE(runtime.shutdown().ok());
  EXPECT_EQ(runtime.trace_log().tasks().size(), 4u);
}

}  // namespace
}  // namespace cedr
