// Tests for the shared-memory submission lane (cedr::shm): segment layout
// and attach-time validation, SPSC ring semantics (wrap-around, full-ring
// back-pressure, cross-thread hand-off), record-CRC poisoning, and the
// end-to-end SHMOPEN flow against an in-process daemon — including a
// client that vanishes mid-ring without BYE, the daemon-side shape of a
// SIGKILLed submitter.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cedr/ipc/ipc.h"
#include "cedr/runtime/runtime.h"
#include "cedr/shm/client.h"
#include "cedr/shm/fdpass.h"
#include "cedr/shm/segment.h"
#include "cedr/shm/server.h"

namespace cedr::shm {
namespace {

std::string temp_socket(const char* name) {
  return ::testing::TempDir() + "/cedr_shm_" + name + ".sock";
}

rt::RuntimeConfig small_config() {
  rt::RuntimeConfig config;
  config.platform = platform::host(2);
  return config;
}

// A single GENERIC task: no buffers, executes in ~work_ns. Small enough to
// ride inline in a SubRecord.
constexpr const char* kInlineDag =
    R"({"app_name":"t","tasks":[{"id":0,"kernel":"GENERIC","args":{"work_ns":1000}}]})";

// Padded past kSubInlineBytes so the client stages it in the arena.
const std::string kArenaDag = std::string(
    R"({"app_name":"shm_arena_test_application_with_a_deliberately_long_name",)"
    R"("tasks":[{"id":0,"kernel":"GENERIC","args":{"work_ns":1000},)"
    R"("predecessors":[]}]})");

// ---------------------------------------------------------------------------
// Segment layout + validation

TEST(ShmSegment, CreateAttachRoundTrip) {
  SegmentOptions options;
  options.sub_slots = 64;
  options.cpl_slots = 32;
  options.arena_bytes = 4096;
  auto created = Segment::create(options);
  ASSERT_TRUE(created.ok()) << created.status().to_string();
  std::memcpy(created->arena(), "payload", 7);

  auto attached = Segment::attach(::dup(created->fd()));
  ASSERT_TRUE(attached.ok()) << attached.status().to_string();
  const SegmentLayout& layout = attached->header()->layout;
  EXPECT_EQ(layout.sub_slots, 64u);
  EXPECT_EQ(layout.cpl_slots, 32u);
  EXPECT_EQ(layout.sub_slot_bytes, sizeof(SubRecord));
  EXPECT_EQ(layout.cpl_slot_bytes, sizeof(CplRecord));
  // Both mappings see the same bytes.
  EXPECT_EQ(std::memcmp(attached->arena(), "payload", 7), 0);
}

TEST(ShmSegment, RejectsNonPowerOfTwoRings) {
  SegmentOptions options;
  options.sub_slots = 100;
  EXPECT_FALSE(Segment::create(options).ok());
}

TEST(ShmSegment, AttachRejectsTornHeader) {
  auto created = Segment::create(SegmentOptions{});
  ASSERT_TRUE(created.ok());
  // Mutate the CRC-covered layout block without recomputing the CRC: the
  // torn-header shape a crashed or hostile peer would leave behind.
  created->header()->layout.sub_slots *= 2;
  auto attached = Segment::attach(::dup(created->fd()));
  EXPECT_FALSE(attached.ok());
  EXPECT_NE(attached.status().message().find("CRC"), std::string::npos);
}

TEST(ShmSegment, AttachRejectsBadMagicAndTruncation) {
  auto created = Segment::create(SegmentOptions{});
  ASSERT_TRUE(created.ok());
  {
    // Truncated file: the mapped layout promises more bytes than exist.
    const int fd = ::dup(created->fd());
    ASSERT_EQ(::ftruncate(fd, 4096), 0);
    EXPECT_FALSE(Segment::attach(fd).ok());
    ASSERT_EQ(
        ::ftruncate(created->fd(),
                    static_cast<off_t>(created->header()->layout.total_bytes)),
        0);
  }
  created->header()->magic = 0;
  EXPECT_FALSE(Segment::attach(::dup(created->fd())).ok());
}

// ---------------------------------------------------------------------------
// SPSC ring semantics

TEST(ShmRing, WrapAroundPreservesOrder) {
  SegmentOptions options;
  options.sub_slots = 4;
  options.cpl_slots = 4;
  auto segment = Segment::create(options);
  ASSERT_TRUE(segment.ok());
  SpscRing<SubRecord> producer = segment->sub_ring();
  SpscRing<SubRecord> consumer = segment->sub_ring();

  // Many times the capacity, so the cursor masks wrap repeatedly.
  for (std::uint64_t i = 0; i < 100; ++i) {
    SubRecord* slot = producer.acquire();
    ASSERT_NE(slot, nullptr);
    std::memset(slot, 0, sizeof *slot);
    slot->seq = i;
    producer.publish();

    const SubRecord* rec = consumer.front();
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->seq, i);
    consumer.release();
  }
  EXPECT_EQ(consumer.front(), nullptr);
}

TEST(ShmRing, FullRingBackpressure) {
  SegmentOptions options;
  options.sub_slots = 4;
  options.cpl_slots = 4;
  auto segment = Segment::create(options);
  ASSERT_TRUE(segment.ok());
  SpscRing<SubRecord> producer = segment->sub_ring();
  SpscRing<SubRecord> consumer = segment->sub_ring();

  for (std::uint64_t i = 0; i < 4; ++i) {
    SubRecord* slot = producer.acquire();
    ASSERT_NE(slot, nullptr);
    slot->seq = i;
    producer.publish();
  }
  // Capacity reached: the producer is refused until the consumer releases.
  EXPECT_EQ(producer.acquire(), nullptr);
  EXPECT_EQ(producer.size(), 4u);

  ASSERT_NE(consumer.front(), nullptr);
  consumer.release();
  SubRecord* slot = producer.acquire();
  ASSERT_NE(slot, nullptr);
  slot->seq = 4;
  producer.publish();
  EXPECT_EQ(producer.acquire(), nullptr);
}

TEST(ShmRing, ThreadedProducerConsumerHandsOffIntact) {
  SegmentOptions options;
  options.sub_slots = 8;  // small on purpose: constant wrap + full-ring waits
  options.cpl_slots = 8;
  auto segment = Segment::create(options);
  ASSERT_TRUE(segment.ok());
  constexpr std::uint64_t kRecords = 20000;

  std::thread producer([&] {
    SpscRing<SubRecord> ring = segment->sub_ring();
    for (std::uint64_t i = 0; i < kRecords; ++i) {
      SubRecord* slot;
      while ((slot = ring.acquire()) == nullptr) std::this_thread::yield();
      std::memset(slot, 0, sizeof *slot);
      slot->opcode = static_cast<std::uint16_t>(Opcode::kNop);
      slot->seq = i;
      slot->crc = sub_record_crc(*slot);
      ring.publish();
    }
  });

  SpscRing<SubRecord> ring = segment->sub_ring();
  std::uint64_t next = 0;
  std::uint64_t crc_failures = 0;
  while (next < kRecords) {
    const SubRecord* rec = ring.front();
    if (rec == nullptr) {
      std::this_thread::yield();
      continue;
    }
    if (rec->crc != sub_record_crc(*rec)) ++crc_failures;
    EXPECT_EQ(rec->seq, next);
    ++next;
    ring.release();
  }
  producer.join();
  EXPECT_EQ(crc_failures, 0u);
}

// ---------------------------------------------------------------------------
// Daemon-side drain: CRC poisoning

TEST(ShmServerDrain, BadRecordCrcPoisonsSession) {
  rt::Runtime runtime(small_config());
  ASSERT_TRUE(runtime.start().ok());
  {
    ShmServerOptions options;
    options.segment.sub_slots = 8;
    options.segment.cpl_slots = 8;
    ShmServer server(runtime, options, nullptr);
    auto info = server.open_session(1);
    ASSERT_TRUE(info.ok()) << info.status().to_string();

    auto client_view = Segment::attach(::dup(info->fds[0]));
    ASSERT_TRUE(client_view.ok());
    SpscRing<SubRecord> ring = client_view->sub_ring();
    SubRecord* slot = ring.acquire();
    ASSERT_NE(slot, nullptr);
    std::memset(slot, 0, sizeof *slot);
    slot->opcode = static_cast<std::uint16_t>(Opcode::kNop);
    slot->seq = 7;
    slot->crc = sub_record_crc(*slot) ^ 0xdeadbeef;  // deliberately wrong
    ring.publish();

    EXPECT_FALSE(server.drain(1));  // poisoned, not "more work"
    EXPECT_EQ(client_view->header()->poisoned.load(), 1u);
    EXPECT_EQ(runtime.counters().get("shm.crc_rejected_total"), 1u);
    // The bad record was not consumed and the session is skipped from now
    // on — no resync guessing.
    std::vector<std::uint64_t> claims;
    server.claim_drains(claims);
    EXPECT_TRUE(claims.empty());
    server.close_session(1);
  }
  EXPECT_TRUE(runtime.shutdown().ok());
}

// ---------------------------------------------------------------------------
// End-to-end over the in-process daemon

class ShmEndToEnd : public ::testing::Test {
 protected:
  void start(ipc::IpcServerConfig config = {}, const char* name = "e2e") {
    runtime_ = std::make_unique<rt::Runtime>(small_config());
    ASSERT_TRUE(runtime_->start().ok());
    server_ = std::make_unique<ipc::IpcServer>(*runtime_, temp_socket(name),
                                               "", config);
    ASSERT_TRUE(server_->start().ok());
  }
  void TearDown() override {
    if (server_ != nullptr) server_->stop();
    if (runtime_ != nullptr) {
      EXPECT_TRUE(runtime_->shutdown().ok());
    }
  }
  std::unique_ptr<rt::Runtime> runtime_;
  std::unique_ptr<ipc::IpcServer> server_;
};

TEST_F(ShmEndToEnd, NopRoundTrip) {
  start({}, "nop");
  ShmClient client(server_->socket_path());
  ASSERT_TRUE(client.connect().ok());
  auto seq = client.nop();
  ASSERT_TRUE(seq.ok());
  auto completion = client.wait_completion(*seq, 10000);
  ASSERT_TRUE(completion.ok()) << completion.status().to_string();
  EXPECT_EQ(completion->status, CplStatus::kOk);
  EXPECT_EQ(completion->value, *seq);
}

TEST_F(ShmEndToEnd, SubmitDagInlineAndArenaExecute) {
  start({}, "submit");
  ShmClient client(server_->socket_path());
  ASSERT_TRUE(client.connect().ok());

  ASSERT_LE(std::strlen(kInlineDag), kSubInlineBytes);
  ASSERT_GT(kArenaDag.size(), kSubInlineBytes);
  auto inline_seq = client.submit_dag_json(kInlineDag);
  ASSERT_TRUE(inline_seq.ok());
  auto arena_seq = client.submit_dag_json(kArenaDag);
  ASSERT_TRUE(arena_seq.ok());

  auto first = client.wait_completion(*inline_seq, 10000);
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  EXPECT_EQ(first->status, CplStatus::kOk) << first->msg;
  auto second = client.wait_completion(*arena_seq, 10000);
  ASSERT_TRUE(second.ok()) << second.status().to_string();
  EXPECT_EQ(second->status, CplStatus::kOk) << second->msg;
  EXPECT_NE(first->value, second->value);  // distinct instance ids

  ASSERT_TRUE(runtime_->wait_all(30.0).ok());
  EXPECT_EQ(runtime_->submitted_apps(), 2u);
  EXPECT_EQ(runtime_->completed_apps(), 2u);
}

TEST_F(ShmEndToEnd, ResubmitSameDocReusesStagedArena) {
  start({}, "restage");
  ShmClient client(server_->socket_path());
  ASSERT_TRUE(client.connect().ok());
  for (int i = 0; i < 50; ++i) {
    auto seq = client.submit_dag_json(kArenaDag);
    ASSERT_TRUE(seq.ok()) << seq.status().to_string();
  }
  ASSERT_TRUE(client.wait_all(30000).ok());
  EXPECT_EQ(client.completed(), 50u);
  ASSERT_TRUE(runtime_->wait_all(30.0).ok());
  EXPECT_EQ(runtime_->completed_apps(), 50u);
}

TEST_F(ShmEndToEnd, MalformedDocumentCompletesWithError) {
  start({}, "badjson");
  ShmClient client(server_->socket_path());
  ASSERT_TRUE(client.connect().ok());
  auto seq = client.submit_dag_json("{not json");
  ASSERT_TRUE(seq.ok());
  auto completion = client.wait_completion(*seq, 10000);
  ASSERT_TRUE(completion.ok());
  EXPECT_EQ(completion->status, CplStatus::kError);
  EXPECT_FALSE(completion->msg.empty());
}

TEST_F(ShmEndToEnd, AdmissionBoundYieldsBusyCompletion) {
  ipc::IpcServerConfig config;
  config.max_inflight_apps = 1;
  config.busy_retry_ms = 7;
  start(config, "busy");
  ShmClient client(server_->socket_path());
  ASSERT_TRUE(client.connect().ok());

  // ~200ms of GENERIC spin keeps one app in flight across the second
  // submission, which must then bounce off the shared admission bound.
  const std::string slow_dag =
      R"({"app_name":"slow","tasks":)"
      R"([{"id":0,"kernel":"GENERIC","args":{"work_ns":200000000}}]})";
  auto first = client.submit_dag_json(slow_dag);
  ASSERT_TRUE(first.ok());
  auto admitted = client.wait_completion(*first, 10000);
  ASSERT_TRUE(admitted.ok());
  ASSERT_EQ(admitted->status, CplStatus::kOk) << admitted->msg;

  auto second = client.submit_dag_json(kInlineDag);
  ASSERT_TRUE(second.ok());
  auto busy = client.wait_completion(*second, 10000);
  ASSERT_TRUE(busy.ok());
  EXPECT_EQ(busy->status, CplStatus::kBusy);
  EXPECT_EQ(busy->value, 7u);  // the configured retry hint
  EXPECT_GE(client.busy_completions(), 1u);
  ASSERT_TRUE(runtime_->wait_all(30.0).ok());
}

TEST_F(ShmEndToEnd, SocketLaneStillWorksAlongside) {
  start({}, "mixed");
  ShmClient shm_client(server_->socket_path());
  ASSERT_TRUE(shm_client.connect().ok());
  ipc::IpcClient socket_client(server_->socket_path());
  auto status = socket_client.status();
  ASSERT_TRUE(status.ok());
  auto seq = shm_client.nop();
  ASSERT_TRUE(seq.ok());
  EXPECT_TRUE(shm_client.wait_completion(*seq, 10000).ok());
  auto stats = socket_client.stats();
  ASSERT_TRUE(stats.ok());
}

TEST_F(ShmEndToEnd, ShmOpenRefusedWhenDisabled) {
  ipc::IpcServerConfig config;
  config.enable_shm = false;
  start(config, "disabled");
  ShmClient client(server_->socket_path());
  const Status s = client.connect();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
}

// A client that vanishes without BYE mid-ring — the daemon-side shape of
// SIGKILL. The handshake is done by hand so the control socket can be
// closed abruptly while submission records are still unconsumed.
TEST_F(ShmEndToEnd, AbruptClientDeathReapsSessionAndDaemonSurvives) {
  start({}, "sigkill");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string path = server_->socket_path();
  ASSERT_LT(path.size(), sizeof(addr.sun_path));
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int sock = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(sock, 0);
  ASSERT_EQ(::connect(sock, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(::send(sock, "SHMOPEN\n", 8, MSG_NOSIGNAL), 8);
  std::string reply;
  std::vector<int> fds;
  while (reply.find('\n') == std::string::npos) {
    char buf[256];
    const ssize_t n = recv_with_fds(sock, buf, sizeof buf, fds);
    ASSERT_GT(n, 0);
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ASSERT_EQ(reply.rfind("OK", 0), 0u) << reply;
  ASSERT_GE(fds.size(), 3u);
  auto segment = Segment::attach(fds[0]);
  ASSERT_TRUE(segment.ok());

  // Queue real submissions, then die without consuming any completion.
  SpscRing<SubRecord> ring = segment->sub_ring();
  for (std::uint64_t i = 1; i <= 8; ++i) {
    SubRecord* slot = ring.acquire();
    ASSERT_NE(slot, nullptr);
    std::memset(slot, 0, sizeof *slot);
    slot->opcode = static_cast<std::uint16_t>(Opcode::kSubmitDag);
    slot->flags = kArgInline;
    slot->seq = i;
    slot->arg_len = static_cast<std::uint32_t>(std::strlen(kInlineDag));
    std::memcpy(slot->inline_arg, kInlineDag, std::strlen(kInlineDag));
    slot->crc = sub_record_crc(*slot);
    ring.publish();
  }
  const std::uint64_t one = 1;
  ASSERT_EQ(::write(fds[1], &one, sizeof one), static_cast<ssize_t>(sizeof one));
  ::close(fds[1]);
  ::close(fds[2]);
  ::close(sock);  // EOF with records possibly mid-drain: the SIGKILL shape

  // The daemon must reap the session and keep serving both lanes.
  ipc::IpcClient probe(server_->socket_path());
  for (int i = 0; i < 200; ++i) {
    auto doc = probe.metrics();
    ASSERT_TRUE(doc.ok());
    const json::Value* metrics = doc->find("metrics");
    ASSERT_NE(metrics, nullptr);
    const json::Value* gauges = metrics->find("gauges");
    ASSERT_NE(gauges, nullptr);
    if (gauges->get_double("shm.sessions", -1.0) == 0.0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ShmClient again(server_->socket_path());
  ASSERT_TRUE(again.connect().ok());
  auto seq = again.nop();
  ASSERT_TRUE(seq.ok());
  auto completion = again.wait_completion(*seq, 10000);
  ASSERT_TRUE(completion.ok()) << completion.status().to_string();
  EXPECT_EQ(completion->status, CplStatus::kOk);
  ASSERT_TRUE(runtime_->wait_all(30.0).ok());
}

}  // namespace
}  // namespace cedr::shm
