// Unit tests for src/common: Status/StatusOr, Rng, BlockingQueue, math_util.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "cedr/common/math_util.h"
#include "cedr/common/queue.h"
#include "cedr/common/rng.h"
#include "cedr/common/status.h"
#include "cedr/common/stopwatch.h"

namespace cedr {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  const Status s = InvalidArgument("bad size");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad size");
  EXPECT_EQ(s.to_string(), "INVALID_ARGUMENT: bad size");
}

TEST(Status, EqualityComparesCodeOnly) {
  EXPECT_EQ(InvalidArgument("a"), InvalidArgument("b"));
  EXPECT_FALSE(InvalidArgument("a") == NotFound("a"));
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kAborted); ++c) {
    EXPECT_NE(status_code_name(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, MoveOutValue) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  const std::vector<int> out = *std::move(v);
  EXPECT_EQ(out.size(), 3u);
}

TEST(StatusOr, ReturnIfErrorMacroPropagates) {
  auto fails = []() -> Status { return Internal("boom"); };
  auto outer = [&]() -> Status {
    CEDR_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(11);
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 8000; ++i) ++hits[rng.next_below(8)];
  for (const int h : hits) EXPECT_GT(h, 800);  // ~1000 expected per bucket
}

TEST(Rng, NormalHasExpectedMoments) {
  Rng rng(13);
  std::vector<double> samples(20000);
  for (double& s : samples) s = rng.normal();
  EXPECT_NEAR(mean(samples), 0.0, 0.03);
  EXPECT_NEAR(stddev(samples), 1.0, 0.03);
}

TEST(Rng, NormalScalesMeanAndStddev) {
  Rng rng(17);
  std::vector<double> samples(20000);
  for (double& s : samples) s = rng.normal(5.0, 2.0);
  EXPECT_NEAR(mean(samples), 5.0, 0.1);
  EXPECT_NEAR(stddev(samples), 2.0, 0.1);
}

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(*q.pop(), 1);
  EXPECT_EQ(*q.pop(), 2);
  EXPECT_EQ(*q.pop(), 3);
}

TEST(BlockingQueue, TryPopEmptyReturnsNothing) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BlockingQueue, CloseRejectsPushesButDrains) {
  BlockingQueue<int> q;
  q.push(1);
  q.close();
  EXPECT_FALSE(q.push(2));
  EXPECT_EQ(*q.pop(), 1);
  EXPECT_FALSE(q.pop().has_value());  // closed and empty
}

TEST(BlockingQueue, CloseWakesBlockedConsumer) {
  BlockingQueue<int> q;
  std::thread consumer([&q] { EXPECT_FALSE(q.pop().has_value()); });
  q.close();
  consumer.join();
}

TEST(BlockingQueue, ManyProducersManyConsumers) {
  BlockingQueue<int> q;
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::atomic<long> total{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q] {
      for (int i = 1; i <= kPerProducer; ++i) q.push(i);
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&q, &total] {
      while (auto v = q.pop()) total += *v;
    });
  }
  for (auto& t : threads) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(total.load(),
            long{kProducers} * kPerProducer * (kPerProducer + 1) / 2);
}

TEST(MathUtil, PowerOfTwoPredicates) {
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(1000));
}

TEST(MathUtil, Log2Exact) {
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(2), 1u);
  EXPECT_EQ(log2_exact(1024), 10u);
}

TEST(MathUtil, NextPowerOfTwo) {
  EXPECT_EQ(next_power_of_two(1), 1u);
  EXPECT_EQ(next_power_of_two(3), 4u);
  EXPECT_EQ(next_power_of_two(1024), 1024u);
  EXPECT_EQ(next_power_of_two(1025), 2048u);
}

TEST(MathUtil, MeanAndStddev) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_NEAR(stddev(v), std::sqrt(1.25), 1e-12);
  EXPECT_DOUBLE_EQ(mean(std::span<const double>{}), 0.0);
}

TEST(MathUtil, EnergyAndMaxAbsDiff) {
  const std::vector<cfloat> a{{3.0f, 4.0f}, {0.0f, 0.0f}};
  const std::vector<cfloat> b{{3.0f, 4.0f}, {1.0f, 0.0f}};
  EXPECT_DOUBLE_EQ(energy(a), 25.0);
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 1.0f);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  const double t0 = sw.elapsed();
  EXPECT_GE(t0, 0.0);
  // A small busy loop must advance the clock.
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(sw.elapsed(), t0);
  sw.reset();
  EXPECT_LT(sw.elapsed(), 1.0);
}

}  // namespace
}  // namespace cedr
