// Tests for the observability layer: the lock-free span tracer, the
// streaming-quantile metrics registry, the Chrome trace-event exporter, and
// the background sampler.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cedr/obs/chrome_trace.h"
#include "cedr/obs/metrics.h"
#include "cedr/obs/sampler.h"
#include "cedr/obs/span.h"

namespace cedr::obs {
namespace {

// ---- SpanEvent --------------------------------------------------------------

TEST(SpanEvent, SetNameTruncatesAndTerminates) {
  SpanEvent e;
  e.set_name("short");
  EXPECT_STREQ(e.name, "short");
  const std::string longname(200, 'x');
  e.set_name(longname.c_str());
  EXPECT_EQ(std::string(e.name).size(), SpanEvent::kNameCapacity - 1);
  e.set_name(nullptr);
  EXPECT_STREQ(e.name, "");
}

// ---- SpanTracer -------------------------------------------------------------

TEST(SpanTracer, RecordsInOrderAndSnapshotCopies) {
  SpanTracer tracer(64);
  tracer.complete_span(Category::kWorker, "a", 0, 1, 1.0, 0.5, "attempt", 0.0);
  tracer.instant(Category::kFault, "b", 0, 2, 2.0);
  tracer.flow(EventKind::kFlowBegin, Category::kApp, "c", 3, 0, 3.0, 77);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "a");
  EXPECT_EQ(events[0].kind, EventKind::kComplete);
  EXPECT_DOUBLE_EQ(events[0].dur, 0.5);
  EXPECT_STREQ(events[0].arg0_name, "attempt");
  EXPECT_STREQ(events[1].name, "b");
  EXPECT_EQ(events[1].kind, EventKind::kInstant);
  EXPECT_STREQ(events[2].name, "c");
  EXPECT_EQ(events[2].flow_id, 77u);
  EXPECT_EQ(events[2].pid, 3u);
  EXPECT_EQ(tracer.recorded(), 3u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(SpanTracer, DisabledGateDropsEverything) {
  SpanTracer tracer(64);
  tracer.set_enabled(false);
  tracer.instant(Category::kRuntime, "x", 0, 0, 0.0);
  tracer.complete_span(Category::kWorker, "y", 0, 0, 0.0, 1.0);
  tracer.flow(EventKind::kFlowBegin, Category::kApp, "z", 0, 0, 0.0, 1);
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.snapshot().empty());
  tracer.set_enabled(true);
  tracer.instant(Category::kRuntime, "x", 0, 0, 0.0);
  EXPECT_EQ(tracer.snapshot().size(), 1u);
}

TEST(SpanTracer, WrapKeepsNewestAndCountsDropped) {
  SpanTracer tracer(16);  // the smallest ring the tracer allows
  ASSERT_EQ(tracer.capacity(), 16u);
  for (int i = 0; i < 40; ++i) {
    tracer.instant(Category::kRuntime, "tick", 0, 0, static_cast<double>(i));
  }
  EXPECT_EQ(tracer.recorded(), 40u);
  EXPECT_EQ(tracer.dropped(), 24u);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 16u);
  // The survivors are the 16 newest, still in record order.
  for (int i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(events[i].ts, static_cast<double>(24 + i));
  }
}

TEST(SpanTracer, CapacityRoundsUpToPowerOfTwo) {
  SpanTracer tracer(100);
  EXPECT_EQ(tracer.capacity(), 128u);
}

TEST(SpanTracer, ConcurrentWritersAndSnapshotsStayTornFree) {
  SpanTracer tracer(256);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const SpanEvent& e : tracer.snapshot()) {
        // A torn event would pair the wrong payload with a name; each
        // writer encodes its id in both fields so tearing is detectable.
        const std::string name = e.name;
        ASSERT_EQ(name, "w" + std::to_string(static_cast<int>(e.arg0)));
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&tracer, t] {
      const std::string name = "w" + std::to_string(t);
      for (int i = 0; i < kPerThread; ++i) {
        tracer.instant(Category::kWorker, name.c_str(), 0,
                       static_cast<std::uint64_t>(t), i * 1e-6, "writer",
                       static_cast<double>(t));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(tracer.recorded(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

// ---- QuantileHistogram ------------------------------------------------------

TEST(QuantileHistogram, EmptyIsAllZero) {
  QuantileHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(QuantileHistogram, SingleValueQuantilesClampToIt) {
  QuantileHistogram h;
  h.record(123.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 123.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 123.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 123.0);
  EXPECT_DOUBLE_EQ(h.min(), 123.0);
  EXPECT_DOUBLE_EQ(h.max(), 123.0);
}

TEST(QuantileHistogram, UniformRampQuantilesWithinRelativeError) {
  QuantileHistogram h;
  for (int i = 1; i <= 10000; ++i) h.record(static_cast<double>(i));
  // Log-linear bucketing with 32 sub-buckets keeps relative error ~3 %.
  EXPECT_NEAR(h.quantile(0.50), 5000.0, 5000.0 * 0.04);
  EXPECT_NEAR(h.quantile(0.95), 9500.0, 9500.0 * 0.04);
  EXPECT_NEAR(h.quantile(0.99), 9900.0, 9900.0 * 0.04);
  EXPECT_DOUBLE_EQ(h.mean(), 5000.5);
}

TEST(QuantileHistogram, SubUnityValuesLandInUnderflowBucket) {
  QuantileHistogram h;
  h.record(0.0);
  h.record(0.25);
  h.record(0.999);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_LE(h.quantile(0.5), 0.999);
  const json::Value doc = h.to_json();
  EXPECT_EQ(doc.get_int("count", -1), 3);
}

// ---- MetricsRegistry --------------------------------------------------------

TEST(MetricsRegistry, GaugesSetAndRead) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.gauge("missing"), 0.0);
  registry.set_gauge("ready_queue_depth", 7.0);
  registry.set_gauge("ready_queue_depth", 9.0);
  EXPECT_DOUBLE_EQ(registry.gauge("ready_queue_depth"), 9.0);
  EXPECT_EQ(registry.gauges().size(), 1u);
}

TEST(MetricsRegistry, HistogramReferencesAreStable) {
  MetricsRegistry registry;
  QuantileHistogram& h = registry.histogram("queue_delay_us");
  for (int i = 0; i < 100; ++i) registry.histogram("other_us");
  h.record(5.0);
  EXPECT_EQ(&registry.histogram("queue_delay_us"), &h);
  EXPECT_EQ(registry.histogram("queue_delay_us").count(), 1u);
}

TEST(MetricsRegistry, SeriesIsBoundedToCapacity) {
  MetricsRegistry registry;
  const std::size_t n = MetricsRegistry::kSeriesCapacity + 100;
  for (std::size_t i = 0; i < n; ++i) {
    registry.sample("pe.cpu1.busy", static_cast<double>(i), 1.0);
  }
  const auto points = registry.series("pe.cpu1.busy");
  ASSERT_EQ(points.size(), MetricsRegistry::kSeriesCapacity);
  // The oldest points were evicted: the tail survives.
  EXPECT_DOUBLE_EQ(points.front().t, static_cast<double>(100));
  EXPECT_DOUBLE_EQ(points.back().t, static_cast<double>(n - 1));
}

TEST(MetricsRegistry, ToJsonSnapshotsEverything) {
  MetricsRegistry registry;
  registry.set_gauge("inflight_apps", 2.0);
  registry.histogram("service_time_us").record(10.0);
  for (int i = 0; i < 100; ++i) {
    registry.sample("ready_queue_depth", i * 0.1, static_cast<double>(i));
  }
  const json::Value doc = registry.to_json(/*series_tail=*/8);
  const json::Value* gauges = doc.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->get_double("inflight_apps", 0.0), 2.0);
  const json::Value* hists = doc.find("histograms");
  ASSERT_NE(hists, nullptr);
  ASSERT_NE(hists->find("service_time_us"), nullptr);
  EXPECT_EQ(hists->find("service_time_us")->get_int("count", -1), 1);
  const json::Value* series = doc.find("series");
  ASSERT_NE(series, nullptr);
  const json::Value* depth = series->find("ready_queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->as_array().size(), 8u);  // truncated to the tail
}

// ---- Chrome trace exporter --------------------------------------------------

std::vector<SpanEvent> sample_events() {
  SpanTracer tracer(64);
  tracer.instant(Category::kApp, "app_arrival", 1, 0, 0.001, "tasks", 4.0);
  tracer.flow(EventKind::kFlowBegin, Category::kApp, "FFT", 1, 0, 0.001, 42);
  tracer.flow(EventKind::kFlowEnd, Category::kWorker, "execute", 0, 1, 0.002,
              42);
  tracer.complete_span(Category::kWorker, "FFT", 0, 1, 0.002, 0.003,
                       "attempt", 0.0, "ok", 1.0);
  tracer.complete_span(Category::kSched, "sched EFT", 0, 0, 0.0005, 0.0001,
                       "ready", 4.0, "assigned", 4.0);
  return tracer.snapshot();
}

TEST(ChromeTrace, DocumentShapeAndPhases) {
  const json::Value doc = chrome_trace_json(sample_events());
  const json::Value* rows = doc.find("traceEvents");
  ASSERT_NE(rows, nullptr);
  ASSERT_TRUE(rows->is_array());
  std::set<std::string> phases;
  for (const json::Value& row : rows->as_array()) {
    phases.insert(row.get_string("ph", "?"));
  }
  EXPECT_TRUE(phases.count("X"));  // complete spans
  EXPECT_TRUE(phases.count("i"));  // instants
  EXPECT_TRUE(phases.count("s"));  // flow begin
  EXPECT_TRUE(phases.count("f"));  // flow end
  EXPECT_TRUE(phases.count("M"));  // track metadata
  EXPECT_EQ(doc.get_string("displayTimeUnit", ""), "ms");
}

TEST(ChromeTrace, TimestampsAreMicrosecondsSortedPerTrack) {
  const json::Value doc = chrome_trace_json(sample_events());
  std::map<std::pair<std::uint64_t, std::uint64_t>, double> last_ts;
  bool saw_execute_span = false;
  for (const json::Value& row : doc.find("traceEvents")->as_array()) {
    if (row.get_string("ph", "") == "M") continue;
    const auto key = std::make_pair(
        static_cast<std::uint64_t>(row.get_int("pid", -1)),
        static_cast<std::uint64_t>(row.get_int("tid", -1)));
    const double ts = row.get_double("ts", -1.0);
    auto it = last_ts.find(key);
    if (it != last_ts.end()) EXPECT_GE(ts, it->second);
    last_ts[key] = ts;
    if (row.get_string("name", "") == "FFT" &&
        row.get_string("ph", "") == "X") {
      saw_execute_span = true;
      EXPECT_DOUBLE_EQ(ts, 2000.0);                        // 0.002 s -> us
      EXPECT_DOUBLE_EQ(row.get_double("dur", 0.0), 3000.0);  // 0.003 s
      const json::Value* args = row.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_DOUBLE_EQ(args->get_double("ok", 0.0), 1.0);
    }
  }
  EXPECT_TRUE(saw_execute_span);
}

TEST(ChromeTrace, ExplicitTrackNamesAreEmitted) {
  std::vector<TrackName> tracks;
  tracks.push_back({0, 0, true, "cedr runtime"});
  tracks.push_back({0, 1, false, "cpu1"});
  const json::Value doc = chrome_trace_json(sample_events(), tracks);
  bool saw_process = false, saw_thread = false;
  for (const json::Value& row : doc.find("traceEvents")->as_array()) {
    if (row.get_string("ph", "") != "M") continue;
    const json::Value* args = row.find("args");
    if (args == nullptr) continue;
    const std::string name = args->get_string("name", "");
    if (row.get_string("name", "") == "process_name" &&
        name == "cedr runtime") {
      saw_process = true;
    }
    if (row.get_string("name", "") == "thread_name" && name == "cpu1") {
      saw_thread = true;
    }
  }
  EXPECT_TRUE(saw_process);
  EXPECT_TRUE(saw_thread);
}

TEST(ChromeTrace, FlowEventsCarryIdAndBindingPoint) {
  const json::Value doc = chrome_trace_json(sample_events());
  bool saw_begin = false, saw_end = false;
  for (const json::Value& row : doc.find("traceEvents")->as_array()) {
    const std::string ph = row.get_string("ph", "");
    if (ph == "s") {
      saw_begin = true;
      EXPECT_EQ(row.get_int("id", -1), 42);
    } else if (ph == "f") {
      saw_end = true;
      EXPECT_EQ(row.get_int("id", -1), 42);
      EXPECT_EQ(row.get_string("bp", ""), "e");
    }
  }
  EXPECT_TRUE(saw_begin);
  EXPECT_TRUE(saw_end);
}

TEST(ChromeTrace, WriteProducesParsableFile) {
  const std::string path = ::testing::TempDir() + "/cedr_obs_chrome.json";
  ASSERT_TRUE(write_chrome_trace(path, sample_events()).ok());
  auto parsed = json::parse_file(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_NE(parsed->find("traceEvents"), nullptr);
}

// ---- Sampler ----------------------------------------------------------------

TEST(Sampler, TicksPeriodicallyAndStopsPromptly) {
  std::atomic<int> ticks{0};
  Sampler sampler(0.005, [&](double elapsed) {
    EXPECT_GE(elapsed, 0.0);
    ticks.fetch_add(1, std::memory_order_relaxed);
  });
  sampler.start();
  EXPECT_TRUE(sampler.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  const int observed = ticks.load();
  EXPECT_GE(observed, 2);
  // No callbacks after stop().
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(ticks.load(), observed);
}

TEST(Sampler, NonPositivePeriodNeverStarts) {
  std::atomic<int> ticks{0};
  Sampler sampler(0.0, [&](double) { ticks.fetch_add(1); });
  sampler.start();
  EXPECT_FALSE(sampler.running());
  sampler.stop();
  EXPECT_EQ(ticks.load(), 0);
}

TEST(Sampler, StartAndStopAreIdempotent) {
  std::atomic<int> ticks{0};
  Sampler sampler(0.002, [&](double) { ticks.fetch_add(1); });
  sampler.start();
  sampler.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sampler.stop();
  sampler.stop();
  EXPECT_GE(ticks.load(), 1);
}

}  // namespace
}  // namespace cedr::obs
