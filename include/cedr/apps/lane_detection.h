#pragma once
// Lane Detection application (paper workload #3, autonomous vehicles).
//
// "Lane Detection is a convolution intensive routine from [the] autonomous
// vehicles domain" whose convolution runs in the frequency domain via FFT
// and pointwise-product (ZIP) operations (§III). The CEDR-API pipeline:
//   CPU glue: RGB -> grayscale
//   Gaussian smoothing as frequency-domain convolution, decomposed into
//     row/column 1-D transforms so every transform is one schedulable task:
//       CEDR_FFT per padded row, corner turn, CEDR_FFT per padded column,
//       CEDR_ZIP against the precomputed kernel spectrum,
//       CEDR_IFFT per column, corner turn, CEDR_IFFT per row
//   CPU glue: Sobel gradients -> threshold -> Hough transform -> lane fit.
// For the paper's 960x540 frame this issues 2x1024 forward and 2x1024
// inverse 1024-point transforms per smoothing pass; repeated passes (the
// paper's multi-filter pipeline reaches 16384/8192) are configurable via
// `smoothing_passes`.

#include "cedr/common/rng.h"
#include "cedr/common/status.h"
#include "cedr/kernels/image.h"

namespace cedr::apps {

struct LaneDetectionConfig {
  std::size_t rows = 540;
  std::size_t cols = 960;
  std::size_t gaussian_ksize = 7;
  double gaussian_sigma = 1.5;
  /// Number of smoothing passes; >1 models deeper convolution stacks.
  std::size_t smoothing_passes = 1;
  float edge_threshold = 0.9f;
  double noise_stddev = 0.02;
  std::uint64_t seed = 1;
  bool nonblocking = false;
};

struct LaneDetectionResult {
  kernels::LaneResult lanes;
  kernels::RoadTruth truth;
  /// Estimated slopes (dx/dy) recovered from the detected Hough lines.
  double left_slope_error = 0.0;
  double right_slope_error = 0.0;
  bool both_lanes_found = false;
  /// Total CEDR_FFT/CEDR_IFFT calls issued (for workload accounting).
  std::size_t fft_calls = 0;
  std::size_t ifft_calls = 0;
};

/// Runs lane detection on a synthesized road frame through the CEDR APIs.
StatusOr<LaneDetectionResult> run_lane_detection(const LaneDetectionConfig& cfg);

/// The smoothing stage alone (exposed for tests): frequency-domain Gaussian
/// blur of `in` using CEDR calls; counts transforms into the two counters.
StatusOr<kernels::GrayImage> gaussian_blur_cedr(const kernels::GrayImage& in,
                                                std::size_t ksize, double sigma,
                                                bool nonblocking,
                                                std::size_t& fft_calls,
                                                std::size_t& ifft_calls);

}  // namespace cedr::apps
