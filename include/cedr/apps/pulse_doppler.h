#pragma once
// Pulse Doppler radar application (paper workload #1).
//
// "Pulse Doppler calculates velocity of an object, by measuring distance of
// the object using 256-point FFTs, and measuring the frequency shift
// between transmitted and emitted signals" (§III). Per dwell:
//   for each of num_pulses pulses: range compression =
//       CEDR_FFT -> CEDR_ZIP(conj) -> CEDR_IFFT          (3 calls/pulse)
//   for each range bin: Doppler CEDR_FFT across pulses
//   CPU glue: corner turns + peak search.
// With the paper's 128x256 dwell this issues 512 forward FFTs per frame,
// matching the "number of FFTs scaling to ... 512" figure.
//
// The application is written purely against cedr.h, so the same function
// runs standalone (CPU inline) or under a runtime via submit_api. The
// non-blocking variant overlaps all per-pulse chains using _NB handles.

#include "cedr/common/rng.h"
#include "cedr/common/status.h"
#include "cedr/kernels/radar.h"

namespace cedr::apps {

struct PulseDopplerConfig {
  kernels::RadarParams params;
  /// Ground-truth scatterer injected into the synthetic echo.
  kernels::RadarTarget truth{.range_bin = 40,
                             .doppler_hz = 1200.0,
                             .velocity_mps = 0.0,
                             .magnitude = 4.0};
  double noise_stddev = 0.05;
  std::uint64_t seed = 1;
  /// Use the non-blocking APIs to overlap pulse processing.
  bool nonblocking = false;
};

struct PulseDopplerResult {
  kernels::RadarTarget estimate;
  kernels::RadarTarget truth;
  /// |estimated velocity - true velocity| in m/s.
  double velocity_error_mps = 0.0;
  bool range_correct = false;
};

/// Runs one Pulse Doppler dwell end to end through the CEDR APIs.
StatusOr<PulseDopplerResult> run_pulse_doppler(const PulseDopplerConfig& cfg);

}  // namespace cedr::apps
