#pragma once
// Executable JSON DAG applications.
//
// task/dag_loader.h parses the *structure* of a DAG application; in real
// CEDR the node implementations come from the accompanying shared object.
// This module makes a JSON DAG directly executable by binding each node to
// the standard libCEDR module implementations over a pool of named buffers
// declared in the document — the self-contained analogue of the shared
// object + JSON pair a compiled CEDR application ships as.
//
// Extended schema (supersets the dag_loader schema):
// {
//   "app_name": "fd_filter",
//   "buffers": {
//     "signal":   {"elems": 1024, "kind": "cfloat"},
//     "kernel":   {"elems": 1024, "kind": "cfloat"},
//     "filtered": {"elems": 1024, "kind": "cfloat"}
//   },
//   "tasks": [
//     {"id": 0, "kernel": "FFT",  "args": {"in": "signal", "out": "signal"},
//      "size": 1024, "predecessors": []},
//     {"id": 1, "kernel": "ZIP",  "args": {"a": "signal", "b": "kernel",
//                                           "out": "filtered", "op": 0},
//      "size": 1024, "predecessors": [0]},
//     {"id": 2, "kernel": "IFFT", "args": {"in": "filtered",
//                                           "out": "filtered"},
//      "size": 1024, "predecessors": [1]},
//     {"id": 3, "kernel": "GENERIC", "args": {"work_ns": 20000},
//      "predecessors": [2]}
//   ]
// }
//
// MMULT args: {"a": BUF, "b": BUF, "c": BUF, "m": M, "k": K, "n": N} over
// "float" buffers. FFT/IFFT/ZIP use "cfloat" buffers; `size` defaults to
// the output buffer's element count.

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cedr/common/math_util.h"
#include "cedr/common/status.h"
#include "cedr/json/json.h"
#include "cedr/task/task.h"

namespace cedr::apps {

/// Named buffer storage backing one application instance. Exposed so tests
/// and callers can seed inputs and inspect outputs.
class BufferPool {
 public:
  Status add_cfloat(const std::string& name, std::size_t elems);
  Status add_float(const std::string& name, std::size_t elems);

  /// nullptr when absent or of the other kind.
  [[nodiscard]] std::vector<cfloat>* cfloat_buffer(const std::string& name);
  [[nodiscard]] std::vector<float>* float_buffer(const std::string& name);

  [[nodiscard]] std::size_t size() const noexcept {
    return cfloats_.size() + floats_.size();
  }

 private:
  std::unordered_map<std::string, std::vector<cfloat>> cfloats_;
  std::unordered_map<std::string, std::vector<float>> floats_;
};

/// A ready-to-submit DAG application: descriptor with bound implementations
/// plus the buffer pool its tasks read and write. The descriptor's task
/// lambdas share ownership of the pool, so the pool outlives any runtime
/// execution even if this struct is discarded after submit_dag().
struct ExecutableDag {
  std::shared_ptr<const task::AppDescriptor> descriptor;
  std::shared_ptr<BufferPool> buffers;
};

/// Builds an executable instance from an extended-schema document.
/// Each call creates fresh buffers: one instantiation per submission.
/// Implemented as DagTemplate::compile + instantiate (dag_template.h);
/// repeat submitters should cache the template and skip the compile.
StatusOr<ExecutableDag> instantiate_dag(const json::Value& doc);

/// json::parse_file + instantiate_dag.
StatusOr<ExecutableDag> load_executable_dag(const std::string& path);

}  // namespace cedr::apps
