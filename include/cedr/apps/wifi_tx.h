#pragma once
// WiFi TX application (paper workload #2).
//
// "WiFi TX generates packets of 64 bits and prepares for transmission over
// an arbitrary channel through scrambler, encoder, modulation, and forward
// error correction processes. WiFi TX relies on 128-point inverse FFT for
// each packet transmitted." (§III). Per packet:
//   CPU glue: scramble -> convolutional encode -> interleave -> QPSK map
//   CEDR_IFFT(128): OFDM symbol synthesis
// A frame of num_packets packets issues num_packets IFFTs; the paper's
// "number of FFTs scaling to 100" corresponds to num_packets = 100.

#include <vector>

#include "cedr/common/math_util.h"
#include "cedr/common/status.h"

namespace cedr::apps {

struct WifiTxConfig {
  std::size_t num_packets = 100;
  std::size_t payload_bits = 64;   ///< per packet, pre-FEC
  std::size_t ofdm_size = 128;     ///< IFFT length
  std::uint8_t scrambler_seed = 0x5D;
  std::uint64_t seed = 1;
  bool nonblocking = false;
};

struct WifiTxResult {
  /// One time-domain OFDM symbol per packet, ofdm_size samples each.
  std::vector<std::vector<cfloat>> symbols;
  /// Original payload bits per packet (for receiver-side verification).
  std::vector<std::vector<std::uint8_t>> payloads;
};

/// Builds and "transmits" a frame of packets through the CEDR APIs.
StatusOr<WifiTxResult> run_wifi_tx(const WifiTxConfig& cfg);

/// Receiver-side oracle: demodulates one transmitted symbol back to payload
/// bits (FFT -> QPSK slice -> deinterleave -> Viterbi -> descramble).
/// Used by tests to prove the TX chain is lossless.
StatusOr<std::vector<std::uint8_t>> decode_wifi_symbol(
    const std::vector<cfloat>& symbol, const WifiTxConfig& cfg);

}  // namespace cedr::apps
