#pragma once
// DAG-based application variants (the pre-CEDR-API programming model).
//
// These builders produce the shared-object + JSON-DAG equivalent of the
// API-based applications: every schedulable operation is one DAG node with
// per-PE-class implementations bound (Task::impls), and temporal
// dependencies are explicit edges. They exist so the repository can compare
// the two programming models functionally (tests) and in timing (sim/,
// bench/) exactly as the paper does.
//
// Each call returns a fresh descriptor with freshly allocated working
// buffers captured inside the task implementations, so one descriptor
// corresponds to one application instance (as in CEDR, where each submitted
// instance gets its own state).

#include <memory>

#include "cedr/apps/pulse_doppler.h"
#include "cedr/apps/wifi_tx.h"
#include "cedr/common/status.h"
#include "cedr/task/task.h"

namespace cedr::apps {

/// A DAG application plus an accessor for its end-to-end result, readable
/// after the instance completes.
struct PulseDopplerDag {
  std::shared_ptr<const task::AppDescriptor> descriptor;
  /// Valid after the runtime reports the instance complete.
  std::function<PulseDopplerResult()> result;
};

/// Pulse Doppler as a DAG:
///   chirp_fft -> {fft_p -> zip_p -> ifft_p} per pulse -> corner_turn
///   -> doppler_fft per range bin -> peak_search
/// Node count: 2 + 3*pulses + samples_per_pulse.
StatusOr<PulseDopplerDag> make_pulse_doppler_dag(const PulseDopplerConfig& cfg);

struct WifiTxDag {
  std::shared_ptr<const task::AppDescriptor> descriptor;
  std::function<WifiTxResult()> result;
};

/// WiFi TX as a DAG: {packet_glue_p -> ifft_p} per packet.
/// Node count: 2*num_packets.
StatusOr<WifiTxDag> make_wifi_tx_dag(const WifiTxConfig& cfg);

}  // namespace cedr::apps
