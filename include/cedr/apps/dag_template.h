#pragma once
// Compiled executable-DAG templates and the content-hash template cache
// (docs/runtime_lifecycle.md).
//
// instantiate_dag() used to pay the full parse -> validate -> bind pipeline
// on every submission, which at shm-lane rates dominates the per-instance
// runtime cost. DagTemplate splits that pipeline at its natural seam:
//
//   compile (once per distinct document)
//     JSON -> validated task-graph skeleton (no impls bound), buffer specs,
//     and per-task binding plans with every argument resolved and every
//     size/kind constraint checked;
//   instantiate (once per submission)
//     fresh BufferPool + per-task implementation arrays built straight from
//     the binding plans — no JSON, no hashing by name, no validation.
//
// The skeleton descriptor is immutable and shared by every instance, so the
// runtime can key per-descriptor precomputation (HEFT ranks, predecessor
// counts) off its address. Per-instance state is only the buffer pool and
// the impl arrays, which the runtime moves into its in-flight tasks.
//
// TemplateCache maps document *content* (FNV-1a hash, full-text compare on
// collision) to compiled templates with bounded LRU eviction, so both the
// shm lane and the socket lane skip compile entirely for repeated
// submissions of the same document — and a mutated document, hashing
// differently, always compiles fresh.

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cedr/api/impls.h"
#include "cedr/common/status.h"
#include "cedr/json/json.h"
#include "cedr/kernels/zip.h"
#include "cedr/task/task.h"

namespace cedr::apps {

class BufferPool;

/// One named buffer a template's instances allocate.
struct BufferSpec {
  std::string name;
  bool is_float = false;  ///< false = cfloat
  std::size_t elems = 0;
};

/// An immutable, shareable compilation of one executable-DAG document.
class DagTemplate {
 public:
  /// Validates and compiles a document. Rejects everything instantiate_dag
  /// rejected: structural errors, unknown kernels/kinds, missing buffers or
  /// args, size/kind mismatches, non-power-of-two FFTs, bad zip ops.
  static StatusOr<std::shared_ptr<const DagTemplate>> compile(
      const json::Value& doc);

  /// One per-submission materialization: the shared skeleton descriptor,
  /// fresh buffers, and per-task implementation arrays indexed by the
  /// graph's storage order (TaskGraph::index_of). The CPU slot of every
  /// buffer-touching array owns the pool, so buffers outlive the instance's
  /// last task even if this struct is discarded after submission.
  struct Instance {
    std::shared_ptr<const task::AppDescriptor> descriptor;
    std::shared_ptr<BufferPool> buffers;
    std::vector<api::ImplArray> impls;
  };
  [[nodiscard]] Instance instantiate() const;

  /// The shared impl-less skeleton (validated structure, cost metadata).
  [[nodiscard]] const std::shared_ptr<const task::AppDescriptor>& skeleton()
      const noexcept {
    return skeleton_;
  }
  [[nodiscard]] const std::vector<BufferSpec>& buffer_specs() const noexcept {
    return specs_;
  }

 private:
  friend struct DagTemplateTestPeer;
  DagTemplate() = default;

  /// Fully resolved binding recipe for one task (by graph storage index).
  struct Binding {
    platform::KernelId kernel = platform::KernelId::kGeneric;
    // Buffer spec indices; which fields are live depends on the kernel
    // (FFT/IFFT: a=in b=out; ZIP: a/b/c=out; MMULT: a/b/c).
    std::size_t a = 0, b = 0, c = 0;
    std::size_t n = 0;  ///< element count (FFT/ZIP) / MMULT n
    std::size_t m = 0, k = 0;
    kernels::ZipOp op = static_cast<kernels::ZipOp>(0);
    bool inverse = false;
    std::size_t work_ns = 0;  ///< GENERIC only
  };

  std::shared_ptr<const task::AppDescriptor> skeleton_;
  std::vector<BufferSpec> specs_;
  std::vector<Binding> bindings_;  ///< by graph storage index
};

/// Bounded, LRU-evicted cache of compiled templates keyed by document
/// content. Thread-safe; compilation happens outside the lock (concurrent
/// misses on the same text may compile twice, the first insert wins).
class TemplateCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;

  using HashFn = std::uint64_t (*)(std::string_view);

  /// `hash` is injectable for collision tests; nullptr uses FNV-1a 64.
  explicit TemplateCache(std::size_t capacity = kDefaultCapacity,
                         HashFn hash = nullptr);

  /// Returns the cached template for `text`, compiling (json::parse +
  /// DagTemplate::compile) on a miss. Compile failures are returned, never
  /// cached: a bad document costs a parse per attempt, not a cache slot.
  StatusOr<std::shared_ptr<const DagTemplate>> get_or_compile(
      std::string_view text);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };
  [[nodiscard]] Stats stats() const noexcept;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// The FNV-1a 64-bit content hash the default-constructed cache uses.
  static std::uint64_t fnv1a64(std::string_view text) noexcept;

  /// Process-wide cache shared by the shm and socket submission lanes.
  static TemplateCache& global();

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::string text;
    std::shared_ptr<const DagTemplate> tmpl;
  };
  using EntryList = std::list<Entry>;  ///< front = most recently used

  std::size_t capacity_;
  HashFn hash_;
  mutable std::mutex mutex_;
  EntryList entries_;
  /// hash -> entries with that hash (collision chain; full-text compare
  /// picks the right one).
  std::unordered_map<std::uint64_t, std::vector<EntryList::iterator>> index_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace cedr::apps
