#pragma once
// The CEDR daemon runtime: main event loop, ready queue, worker threads.
//
// Reproduces the runtime half of Fig. 1 with real threads:
//   - one worker thread per PE; CPU workers execute kernels inline,
//     accelerator workers drive their emulated MMIO device (program
//     registers -> DMA -> poll -> readback) exactly as the ZCU102 flow does;
//   - a main event loop that receives submissions, releases DAG successors,
//     runs the configured scheduling heuristic over the ready queue each
//     round, and dispatches assignments to per-worker mailboxes;
//   - two application models: DAG-based (a task graph whose nodes the
//     runtime schedules, the pre-CEDR-API model) and API-based (the
//     application's main runs on its own thread and every libCEDR call
//     becomes one scheduled task via enqueue_kernel).
//
// Lifecycle: construct -> start() -> submit_*() -> wait_*() -> shutdown().
// shutdown() is idempotent and also runs from the destructor.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cedr/adapt/online_estimator.h"
#include "cedr/common/queue.h"
#include "cedr/json/json.h"
#include "cedr/common/status.h"
#include "cedr/obs/metrics.h"
#include "cedr/obs/sampler.h"
#include "cedr/obs/segment.h"
#include "cedr/obs/span.h"
#include "cedr/platform/fault.h"
#include "cedr/platform/platform.h"
#include "cedr/runtime/completion.h"
#include "cedr/sched/scheduler.h"
#include "cedr/task/task.h"
#include "cedr/trace/trace.h"

namespace cedr::sched {
class LookaheadScheduler;
}

namespace cedr::rt {

class Runtime;

/// Identifies which runtime / application instance the current thread is
/// executing for. Set by Runtime around API-application main functions; the
/// libCEDR API layer reads it to route enqueue_kernel calls.
struct ThreadBinding {
  Runtime* runtime = nullptr;
  std::uint64_t instance_id = 0;
};

/// The current thread's binding (default: unbound).
ThreadBinding& thread_binding() noexcept;

/// Observability knobs (span tracing + background metrics sampling).
struct ObsConfig {
  /// Gates the span tracer. Off, record() is a single relaxed load.
  bool tracing = true;
  /// Span ring size (events); rounded up to a power of two. The ring keeps
  /// the most recent `ring_capacity` events.
  std::size_t ring_capacity = obs::SpanTracer::kDefaultCapacity;
  /// Period of the background sampler thread that records queue depth and
  /// per-PE busy fraction time series; <= 0 disables the sampler.
  double sampler_period_s = 0.0;
  /// Continuous trace pipeline (docs/observability.md): when non-empty, the
  /// span ring is periodically drained into rotated `.cbt` segment files
  /// under this directory, so traces survive crashes and unbounded runs.
  /// Empty (the default) disables segment flushing.
  std::string trace_dir;
  /// Period of the background flush that drains the ring into the open
  /// segment; also the upper bound on trace data lost to a SIGKILL.
  double trace_flush_interval_s = 1.0;
  /// Size-based segment rotation threshold (span records per segment).
  std::size_t trace_segment_events = 8192;
  /// Age-based segment rotation threshold; <= 0 disables age rotation.
  double trace_segment_age_s = 10.0;
  /// Retention: finalized segments kept on disk (0 = unbounded).
  std::size_t trace_retention = 64;

  [[nodiscard]] json::Value to_json() const;
  static StatusOr<ObsConfig> from_json(const json::Value& value);
};

/// Live snapshot of runtime state, served over IPC as `STATS`.
struct RuntimeStats {
  double uptime_s = 0.0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t inflight = 0;        ///< submitted - completed
  std::size_t ready_tasks = 0;       ///< ready queue depth
  std::size_t deferred_tasks = 0;    ///< retries backing off
  std::uint64_t tasks_executed = 0;  ///< execution attempts, all PEs
  struct PeBusy {
    std::string name;
    std::uint64_t tasks = 0;       ///< attempts executed on this PE
    double busy_fraction = 0.0;    ///< busy seconds / uptime
    bool quarantined = false;
  };
  std::vector<PeBusy> pes;
};

/// Runtime Configuration (paper Fig. 1): platform + heuristic + features.
struct RuntimeConfig {
  platform::PlatformConfig platform;
  std::string scheduler = "EFT";
  /// Upper bound on how long the event loop sleeps between scheduling
  /// rounds when no events arrive.
  double scheduler_period_s = 200e-6;
  /// Default timeout for wait_all / wait_app when the caller passes none:
  /// seconds to wait before giving up with Unavailable. 0 waits forever
  /// (the daemon's `--wait-timeout 0`).
  double default_wait_timeout_s = 300.0;
  /// Enables the PAPI-substitute event counters.
  bool enable_counters = true;
  /// Fault-injection scenario plus the fault-tolerance response policy
  /// (retry bound, backoff, quarantine). An empty plan injects nothing but
  /// the policy still governs genuine task failures.
  platform::FaultPlan fault_plan;
  /// Live telemetry (span tracer, metrics sampler).
  ObsConfig obs;
  /// Online cost-model adaptation (see docs/adaptive_costs.md). Off by
  /// default; when enabled the schedulers consume continuously refined
  /// cost tables instead of the static platform presets.
  adapt::AdaptConfig adapt;
  /// Frontier lookahead depth for the lookahead schedulers (HEFT_LA /
  /// EFT_LA): how many DAG generations beyond the ready set one scheduling
  /// round may place as reservations (docs/scheduling.md "Lookahead
  /// rounds"). 0 restricts lookahead rounds to the ready snapshot; ignored
  /// by the classic per-ready-set heuristics.
  std::size_t lookahead_depth = 2;

  /// Serialization to/from the JSON runtime-configuration file the paper's
  /// daemon consumes ("Runtime Configuration" input of Fig. 1).
  [[nodiscard]] json::Value to_json() const;
  static StatusOr<RuntimeConfig> from_json(const json::Value& value);
  static StatusOr<RuntimeConfig> load(const std::string& path);
};

/// Snapshot of one PE's fault-tolerance state (see Runtime::pe_health).
struct PeHealth {
  std::string pe_name;
  platform::PeClass cls = platform::PeClass::kCpu;
  bool quarantined = false;
  std::uint32_t consecutive_faults = 0;  ///< since the last success
  std::uint64_t faults_seen = 0;         ///< lifetime failed executions
  std::uint64_t quarantines = 0;         ///< times this PE was quarantined
};

/// A DAG-application submission in fast-path form (docs/runtime_lifecycle.md):
/// a shareable descriptor plus per-instance implementation arrays indexed by
/// the graph's storage order (TaskGraph::index_of). When `impls` is empty the
/// runtime falls back to the implementations bound inside the descriptor's
/// tasks — the legacy submit_dag shape. A non-empty `impls` lets many
/// instances share one immutable skeleton descriptor (DagTemplate), so
/// per-descriptor precomputation (HEFT ranks, predecessor counts, successor
/// index lists) is cached across submissions.
struct DagSubmission {
  std::shared_ptr<const task::AppDescriptor> descriptor;
  /// Per-task implementations by storage index; empty = use descriptor's.
  std::vector<std::array<task::TaskFn, platform::kNumPeClasses>> impls;
};

/// One API-mode kernel invocation to be scheduled.
struct KernelRequest {
  std::string name;
  platform::KernelId kernel = platform::KernelId::kGeneric;
  std::size_t problem_size = 0;
  std::size_t data_bytes = 0;
  /// Implementations per PE class (api/ fills these from libCEDR modules).
  std::array<task::TaskFn, platform::kNumPeClasses> impls{};
};

/// The CEDR daemon process, in-library form.
class Runtime {
 public:
  explicit Runtime(RuntimeConfig config);
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;
  ~Runtime();

  /// Spawns worker threads and the main event loop. Fails on invalid
  /// configuration (unknown scheduler, bad platform).
  Status start();

  /// Stops accepting work, waits for in-flight apps, joins all threads.
  Status shutdown();

  /// Submits a DAG-based application instance. Task implementations must be
  /// bound in the descriptor (Task::impls). Returns the instance id.
  StatusOr<std::uint64_t> submit_dag(
      std::shared_ptr<const task::AppDescriptor> app);

  /// Fast-path DAG submission (see DagSubmission). Returns the instance id.
  StatusOr<std::uint64_t> submit_dag(DagSubmission submission);

  /// Submits many DAG instances with one lifecycle-lock acquisition and one
  /// ready-queue batch push. Element i of the result corresponds to
  /// submission i; failures are per-element (a bad descriptor does not
  /// reject its batchmates).
  std::vector<StatusOr<std::uint64_t>> submit_dag_batch(
      std::vector<DagSubmission> submissions);

  /// Submits an API-based application: `main_fn` runs on a fresh thread
  /// with this runtime attached, so libCEDR calls inside it are scheduled
  /// here. Returns the instance id.
  StatusOr<std::uint64_t> submit_api(std::string app_name,
                                     std::function<void()> main_fn);

  /// Called by the libCEDR API layer from an application thread: enqueues
  /// one kernel task. `completion` is signalled by the executing worker.
  Status enqueue_kernel(KernelRequest request, CompletionPtr completion);

  /// Blocks until every submitted application has completed. A negative
  /// timeout (the default) uses RuntimeConfig::default_wait_timeout_s;
  /// 0 waits forever; positive values are explicit deadlines in seconds.
  Status wait_all(double timeout_s = -1.0);
  /// Blocks until one application instance completes. Timeout semantics as
  /// in wait_all.
  Status wait_app(std::uint64_t instance_id, double timeout_s = -1.0);

  /// Number of applications submitted / completed so far.
  [[nodiscard]] std::uint64_t submitted_apps() const noexcept;
  [[nodiscard]] std::uint64_t completed_apps() const noexcept;

  /// Seconds since start(); the epoch of all trace timestamps.
  [[nodiscard]] double now() const noexcept;

  /// Execution trace (tasks, apps, scheduling rounds).
  [[nodiscard]] const trace::TraceLog& trace_log() const noexcept {
    return trace_;
  }
  [[nodiscard]] trace::CounterSet& counters() noexcept { return counters_; }

  /// Live span stream over the runtime hot paths (see docs/observability.md).
  [[nodiscard]] obs::SpanTracer& tracer() noexcept { return tracer_; }
  [[nodiscard]] const obs::SpanTracer& tracer() const noexcept {
    return tracer_;
  }
  /// Gauges, quantile histograms and sampler time series.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }

  /// Point-in-time runtime state; cheap enough to poll over IPC.
  [[nodiscard]] RuntimeStats stats() const;

  /// Exports the span ring as Chrome trace-event JSON (one pid per app
  /// instance, one tid per PE; Perfetto-loadable).
  Status write_chrome_trace(const std::string& path) const;

  /// Current track table (process/thread names) for trace export: runtime
  /// tracks, workers, and every live or reaped app instance.
  [[nodiscard]] std::vector<obs::TrackName> trace_tracks() const;

  /// Continuous-trace flusher; nullptr unless ObsConfig::trace_dir is set.
  [[nodiscard]] const obs::TraceFlusher* trace_flusher() const noexcept {
    return flusher_.get();
  }

  /// Current fault-tolerance state of every PE, in platform order.
  [[nodiscard]] std::vector<PeHealth> pe_health() const;

  /// Online cost estimator; nullptr unless RuntimeConfig::adapt.enabled.
  [[nodiscard]] const adapt::OnlineCostEstimator* adapt_estimator()
      const noexcept {
    return adapt_.get();
  }

  /// Wall-clock seconds the runtime spent receiving, managing and
  /// terminating applications, *excluding* heuristic decision time — the
  /// paper's "runtime overhead" metric (§IV-A).
  [[nodiscard]] double runtime_overhead_s() const noexcept;

  [[nodiscard]] const RuntimeConfig& config() const noexcept { return config_; }

 private:
  struct InFlightTask;
  struct AppInstance;
  struct Worker;

  // The implementation is split across focused translation units
  // (docs/scheduling.md):
  //   runtime.cpp       — configuration, lifecycle, observability accessors
  //   app_lifecycle.cpp — submissions, enqueue_kernel, waiting
  //   ready_state.cpp   — main event loop, completion processing
  //   dispatch.cpp      — scheduling rounds, worker threads
  void main_loop();
  void worker_loop(Worker& worker);
  void process_completions();
  void run_scheduling_round();
  /// Marks an application finished. Caller holds the app-lifecycle mutex.
  void finish_app_locked(AppInstance& app);
  /// Finishes API apps whose main returned with no kernels outstanding and
  /// reaps exited application threads. Returns whether any app finished.
  bool finish_idle_api_apps();
  Status execute_on_pe(InFlightTask& task, Worker& worker);
  /// Bumps a counter iff RuntimeConfig::enable_counters is set.
  void count(const char* name, std::uint64_t delta = 1);

  RuntimeConfig config_;
  std::unique_ptr<sched::Scheduler> scheduler_;
  /// scheduler_ downcast, set once in start(): non-null iff the configured
  /// heuristic places whole lookahead windows (docs/scheduling.md
  /// "Lookahead rounds"). Rounds then widen the snapshot into a
  /// sched::Frontier and lookahead placements become reservations.
  sched::LookaheadScheduler* lookahead_ = nullptr;
  trace::TraceLog trace_;
  trace::CounterSet counters_;
  obs::SpanTracer tracer_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::Sampler> sampler_;
  /// Continuous trace pipeline: periodic ring drain into `.cbt` segments on
  /// its own sampler thread (so a slow disk never delays the metrics tick).
  std::unique_ptr<obs::TraceFlusher> flusher_;
  std::unique_ptr<obs::Sampler> flush_sampler_;
  /// Cached histogram handles so hot paths skip the registry map lookup.
  obs::QuantileHistogram* queue_delay_us_ = nullptr;
  obs::QuantileHistogram* service_time_us_ = nullptr;
  obs::QuantileHistogram* sched_decision_us_ = nullptr;
  /// Instance-lifecycle histograms (docs/runtime_lifecycle.md): wall time of
  /// one DAG-submission prepare+publish, and of one worker completion-batch
  /// flush.
  obs::QuantileHistogram* instantiate_us_ = nullptr;
  obs::QuantileHistogram* complete_publish_us_ = nullptr;
  /// Wall time of one whole lookahead round: frontier build + window
  /// placement + reservation bookkeeping (lookahead schedulers only).
  obs::QuantileHistogram* lookahead_round_us_ = nullptr;
  /// Scheduler-round span label ("sched <heuristic>"), built once.
  std::string sched_span_name_;
  /// Non-null when the fault plan injects anything. Per-PE streams are only
  /// touched from the owning worker thread, so no extra locking is needed.
  std::unique_ptr<platform::FaultInjector> fault_injector_;
  /// Non-null when online cost adaptation is enabled. Workers feed it
  /// completions; scheduling rounds read its lock-free snapshots.
  std::unique_ptr<adapt::OnlineCostEstimator> adapt_;

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cedr::rt
