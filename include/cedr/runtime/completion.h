#pragma once
// Task-completion synchronization primitive.
//
// This is the paper's Fig. 4 mechanism: before pushing a task into the
// ready queue, the application thread "initializes a set of pthread_cond
// and pthread_mutex variables to use to receive updates on the progress of
// its task", sleeps in a cond-wait, and is signalled by the worker thread
// that executes the task. Completion packages that condvar/mutex pair with
// the result status; blocking APIs wait on it immediately, non-blocking
// APIs hand it to the user as a cedr_handle_t.

#include <condition_variable>
#include <memory>
#include <mutex>

#include "cedr/common/status.h"

namespace cedr::rt {

/// One-shot completion latch. signal() may be called exactly once.
class Completion {
 public:
  /// Marks the task finished and wakes all waiters.
  void signal(Status status) {
    {
      std::lock_guard lock(mutex_);
      status_ = std::move(status);
      done_ = true;
    }
    cv_.notify_all();
  }

  /// Blocks until signalled; returns the task's status.
  Status wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return done_; });
    return status_;
  }

  /// Blocks up to `timeout_s` seconds. Returns the task status, or
  /// UNAVAILABLE on timeout.
  Status wait_for(double timeout_s) {
    std::unique_lock lock(mutex_);
    if (!cv_.wait_for(lock, std::chrono::duration<double>(timeout_s),
                      [this] { return done_; })) {
      return Unavailable("timed out waiting for task completion");
    }
    return status_;
  }

  /// Non-blocking poll.
  [[nodiscard]] bool done() const {
    std::lock_guard lock(mutex_);
    return done_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  Status status_;
};

using CompletionPtr = std::shared_ptr<Completion>;

}  // namespace cedr::rt
