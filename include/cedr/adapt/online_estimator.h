#pragma once
// Online cost-model adaptation.
//
// CEDR's cost-aware heuristics (EFT/ETF/HEFT_RT) are only as good as their
// profiling tables; the real framework obtains those offline, so a
// mis-calibrated or drifting table silently degrades every scheduling
// decision. OnlineCostEstimator closes the loop at run time: worker
// threads (threaded runtime) and the sim engine (virtual time) feed it one
// observation per completed task — (kernel, PE class, problem size, bytes
// moved, measured service seconds) — and it refines the per-(kernel, PE
// class) KernelCost polynomial with exponentially-decayed recursive least
// squares (cedr/adapt/fit.h).
//
// Serving is lock-free: learned coefficients are published as immutable
// CostModel snapshots behind an atomic shared_ptr, so `finish_time_on` and
// the heuristics read refreshed tables with zero locking on the scheduling
// hot path. Cold start falls back to the analytic preset tables; learned
// values blend in linearly as a pairing's sample count clears the warmup
// gate. Observations that disagree with the current fit by more than
// `outlier_threshold`x are rejected so fault-injected retries and latency
// spikes don't poison the coefficients.
//
// The estimator is deterministic: identical observation sequences produce
// identical published tables (no clocks, no RNG), which is what lets the
// threaded runtime and the discrete-event sim be compared bit-for-bit.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "cedr/adapt/fit.h"
#include "cedr/common/status.h"
#include "cedr/json/json.h"
#include "cedr/platform/cost_model.h"

namespace cedr::adapt {

/// Tuning knobs for the online estimator.
struct AdaptConfig {
  bool enabled = false;
  /// Decay half-life in *samples*: an observation's weight on a pairing's
  /// fit halves every `half_life` accepted observations of that pairing.
  /// Sample-count (not wall-clock) decay keeps the estimator deterministic
  /// across the threaded runtime and the virtual-time sim.
  double half_life = 64.0;
  /// Warmup gate: a pairing's learned coefficients are not served until it
  /// has accepted this many observations; blending to fully-learned
  /// completes after twice this many.
  std::size_t min_samples = 8;
  /// Observations further than this factor from the current prediction
  /// (either direction) are rejected once a pairing is past warmup.
  double outlier_threshold = 4.0;
  /// Accepted observations between snapshot publishes.
  std::size_t publish_interval = 16;

  [[nodiscard]] json::Value to_json() const;
  static StatusOr<AdaptConfig> from_json(const json::Value& value);
};

/// Reporting view of one adapted (kernel, PE class) pairing.
struct PairStats {
  platform::KernelId kernel = platform::KernelId::kGeneric;
  platform::PeClass cls = platform::PeClass::kCpu;
  std::size_t samples = 0;   ///< accepted observations
  std::size_t rejected = 0;  ///< outlier-rejected observations
  double blend = 0.0;        ///< 0 = all preset, 1 = all learned
  double rel_error = 0.0;    ///< decayed mean |obs - pred| / pred
  platform::KernelCost learned;
  platform::KernelCost preset;
};

/// Continuously refined cost model. Thread-safe: observe() may be called
/// concurrently from any number of worker threads; snapshot() is wait-free
/// for readers.
class OnlineCostEstimator {
 public:
  OnlineCostEstimator(AdaptConfig config, platform::CostModel preset);

  /// Ingests one completed-task observation. Callers must only report
  /// successful executions (no faulted attempts) — retry and latency-spike
  /// pollution beyond that is handled by outlier rejection.
  void observe(platform::KernelId kernel, platform::PeClass cls,
               std::size_t n, std::size_t bytes, double service_s);

  /// Current published cost model (preset blended with learned values).
  /// Lock-free; the returned snapshot is immutable and safe to hold across
  /// an entire scheduling round.
  [[nodiscard]] std::shared_ptr<const platform::CostModel> snapshot() const;

  /// Per-pairing statistics, sorted by (kernel, class).
  [[nodiscard]] std::vector<PairStats> pair_stats() const;

  [[nodiscard]] std::uint64_t observations() const noexcept;
  [[nodiscard]] std::uint64_t rejected() const noexcept;
  [[nodiscard]] std::uint64_t publishes() const noexcept;

  /// Decayed mean relative error over every pairing with ≥2 samples
  /// (0.0 when nothing has been observed yet).
  [[nodiscard]] double mean_rel_error() const;

  /// Mean relative error restricted to one PE class (metrics gauges).
  [[nodiscard]] double class_rel_error(platform::PeClass cls) const;

  /// COSTS-verb payload: config, counters, and per-pairing static vs
  /// learned coefficients.
  [[nodiscard]] json::Value to_json() const;

  [[nodiscard]] const AdaptConfig& config() const noexcept { return config_; }

 private:
  struct PairState {
    RlsFit fit;
    std::size_t rejected = 0;
    double rel_error = 0.0;
    double rel_error_weight = 0.0;

    explicit PairState(double half_life)
        : fit(FitBasis::kPoly, half_life) {}
  };

  /// Rebuilds and atomically publishes a blended snapshot. Caller holds
  /// mutex_.
  void publish_locked();
  [[nodiscard]] double blend_for(std::size_t samples) const noexcept;

  AdaptConfig config_;
  platform::CostModel preset_;

  mutable std::mutex mutex_;
  std::map<std::pair<int, int>, PairState> pairs_;
  std::uint64_t accepted_since_publish_ = 0;

  // Counters are atomics so the accessors stay lock-free for samplers.
  std::atomic<std::uint64_t> observations_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> publishes_{0};

  std::atomic<std::shared_ptr<const platform::CostModel>> snapshot_;
};

}  // namespace cedr::adapt
