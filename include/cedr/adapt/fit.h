#pragma once
// Shared least-squares core for cost-model coefficient fitting.
//
// Two consumers fit the same KernelCost polynomial
//   service ~= fixed + per_point * n + per_nlogn * n * log2(n)
// from (problem size, measured service seconds) observations: the offline
// trace profiler (platform::profile_costs) and the online
// adapt::OnlineCostEstimator. Both run on the one recursive least-squares
// engine below — batch fitting is the same filter with a forgetting factor
// of 1 (all samples weighted equally), fed once per sample.
//
// The engine is deterministic: its state is a pure function of the
// observation sequence (no clocks, no RNG), so the threaded runtime and
// the virtual-time sim produce identical coefficients from identical
// observation streams.

#include <array>
#include <cstddef>
#include <vector>

#include "cedr/platform/cost_model.h"

namespace cedr::adapt {

/// One (problem size, measured service seconds) observation.
struct FitSample {
  double n = 0.0;
  double service_s = 0.0;
};

/// Which columns of the cost polynomial a fit estimates.
enum class FitBasis {
  kAffine,  ///< [1, n] — per_nlogn left at 0 (robust at few distinct sizes)
  kPoly,    ///< [1, n, n*log2(n)] — the full KernelCost basis
};

/// Exponentially-weighted recursive least squares over the KernelCost
/// feature vector.
///
/// `half_life_samples` sets the forgetting factor lambda =
/// 2^(-1 / half_life): an observation's influence halves every half_life
/// updates, so the fit tracks drifting device latency. Pass kNoDecay for
/// an ordinary least-squares fit over all samples.
///
/// Features and target are normalized by the first observation's
/// magnitudes so the covariance stays well-conditioned across problem
/// sizes from 64-point FFTs to multi-megapoint generic kernels and across
/// nanosecond-to-second service-time scales.
class RlsFit {
 public:
  static constexpr double kNoDecay = 0.0;

  explicit RlsFit(FitBasis basis = FitBasis::kPoly,
                  double half_life_samples = kNoDecay);

  /// Folds one observation into the filter.
  void update(double n, double service_s);

  [[nodiscard]] std::size_t samples() const noexcept { return samples_; }

  /// True once at least two distinct problem sizes have been observed;
  /// until then only the mean (fixed term) is identifiable.
  [[nodiscard]] bool multi_size() const noexcept { return multi_size_; }

  /// Model prediction at problem size n (0.0 before any update).
  [[nodiscard]] double predict(double n) const noexcept;

  /// Raw denormalized coefficients [fixed_s, per_point_s, per_nlogn_s],
  /// unclamped — callers that need the fallback-to-mean rule inspect the
  /// sign here.
  [[nodiscard]] std::array<double, 3> raw_coefficients() const noexcept;

  /// Mean of the observed service times under the same exponential decay.
  [[nodiscard]] double mean_service() const noexcept { return mean_; }

  /// Fitted coefficients with every term clamped nonnegative (negative
  /// execution-time terms are non-physical).
  [[nodiscard]] platform::KernelCost coefficients() const noexcept;

 private:
  static constexpr std::size_t kMaxDim = 3;

  std::size_t dim_ = kMaxDim;
  double lambda_ = 1.0;
  std::size_t samples_ = 0;
  bool multi_size_ = false;
  double first_n_ = 0.0;
  double mean_ = 0.0;
  double mean_weight_ = 0.0;
  double scale_y_ = 1.0;
  std::array<double, kMaxDim> scale_{1.0, 1.0, 1.0};
  std::array<double, kMaxDim> theta_{};
  std::array<std::array<double, kMaxDim>, kMaxDim> p_{};

  void features(double n, std::array<double, kMaxDim>& phi) const noexcept;
};

/// Batch affine fit service ~= fixed + per_point * n with the slope clamped
/// nonnegative; degenerate sample sets (a single distinct size, or a
/// negative fitted slope) fall back to the sample mean. This is the
/// offline profiler's fit, run through the same RLS engine with no decay.
[[nodiscard]] platform::KernelCost fit_affine(
    const std::vector<FitSample>& samples);

}  // namespace cedr::adapt
