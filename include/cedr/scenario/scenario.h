#pragma once
// The CEDR scenario-description language (docs/scenarios.md).
//
// A scenario file declares, in one small TOML-like document, everything a
// seeded emulation needs: app mix, arrival process, platform preset,
// scheduler, programming model, fault plan and adaptation settings — the
// knobs that today's figure benchmarks hand-wire in C++. One file compiles
// to a fully-seeded SimConfig + workload (scenario/runner.h) whose metric
// summary is diffed against golden bands (scenario/band.h) by tools/
// cedr_sweep, turning each paper figure into one scenario among hundreds.
//
// The grammar is a strict TOML subset, parsed line by line:
//   * `key = value` pairs; values are quoted strings, integers, floats,
//     booleans, or single-line lists `[v1, v2]` of those scalars.
//   * `[section]` tables and `[[section]]` array-of-table entries; section
//     names may be dotted (`[faults.pe.fft0]`).
//   * `#` starts a comment (outside strings); blank lines are ignored.
// Parsing is all-or-nothing: any malformed line, duplicate key/section or
// unknown key yields a single-line `line N: ...` error and NO partial
// configuration. to_text() emits the canonical full form; parse(to_text(s))
// reproduces s exactly (the round-trip property tests/test_scenario.cpp
// locks down).
//
// Seeding model: `seed` is the scenario's single entropy root. Trial t
// draws its arrivals from seed + t * 0x9e3779b9 + 1 (the repo-wide trial
// discipline), each workload stream derives its own independent RNG from
// that trial seed (workload::stream_seed), and the fault plan carries its
// own `faults.seed`. Identical files therefore produce bit-identical
// metric summaries and exported traces.
//
// A `[sweep]` table turns one file into a scenario matrix: each key is a
// swept parameter (see kSweepableKeys in scenario.cpp) and its list value
// the axis; expand_sweep() emits the cross product, naming each point
// `<name>/k1=v1,k2=v2` in the file's axis order.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cedr/common/status.h"
#include "cedr/platform/fault.h"

namespace cedr::scenario {

/// [platform]: preset name plus per-preset PE counts.
struct PlatformSpec {
  std::string preset = "zcu102";  ///< zcu102 | jetson | biglittle | host
  std::size_t cpus = 3;
  std::size_t ffts = 1;
  std::size_t mmults = 0;
  std::size_t gpus = 1;
  std::size_t big = 2;
  std::size_t little = 4;
};

/// One [[app]] entry: a stream of instances of one modeled application.
struct AppSpec {
  std::string kind;  ///< pulse_doppler | wifi_tx | lane_detection
  std::size_t instances = 1;
  double start_offset_s = 0.0;
  /// Lane Detection transform-count divisor (1 = the paper's full 16384 +
  /// 8192 instances); ignored by the other apps.
  std::size_t scale = 4;
  bool nonblocking = false;
};

/// [arrival]: the workload::ArrivalSpec in textual form.
struct ArrivalSettings {
  std::string process = "periodic";  ///< periodic | poisson | mmpp | closed
  double rate_mbps = 200.0;
  double jitter = 0.2;
  double burst_ratio = 4.0;
  double burst_fraction = 0.25;
  double burst_cycle_s = 0.05;
  double think_s = 0.01;
  std::size_t clients = 4;
};

/// [adapt]: online cost-model adaptation settings (docs/adaptive_costs.md).
struct AdaptSettings {
  bool enabled = false;
  double half_life = 64.0;
  std::size_t min_samples = 8;
  double outlier_threshold = 4.0;
  std::size_t publish_interval = 16;
};

/// One [sweep] axis: a parameter key and its value list (canonical text).
struct SweepAxis {
  std::string key;
  std::vector<std::string> values;
};

/// One parsed scenario document.
struct Scenario {
  std::string name;
  std::uint64_t seed = 42;
  std::size_t trials = 1;
  std::string scheduler = "EFT";
  std::string model = "api";  ///< api | dag
  double max_virtual_time_s = 3600.0;
  /// Multiplies every coefficient of the cost table the *scheduler*
  /// consults (ground-truth execution stays untouched) — the static
  /// miscalibration knob of bench/micro_adapt, here one line in a file.
  double sched_cost_scale = 1.0;
  PlatformSpec platform;
  ArrivalSettings arrival;
  std::vector<AppSpec> apps;
  bool has_faults = false;           ///< a [faults] section was present
  platform::FaultPlan faults;        ///< meaningful when has_faults
  AdaptSettings adapt;
  std::vector<SweepAxis> sweep;

  /// Canonical emission: every field, fixed order, round-trip exact.
  [[nodiscard]] std::string to_text() const;
  /// Semantic checks beyond grammar (known app kinds, positive counts...).
  [[nodiscard]] Status validate() const;

  friend bool operator==(const Scenario& a, const Scenario& b) {
    return a.to_text() == b.to_text();
  }
};

/// Parses one scenario document. Errors are single-line `line N: ...`
/// messages; nothing is returned on failure (no partial config).
StatusOr<Scenario> parse_scenario(std::string_view text);

/// Reads and parses `path`; errors are prefixed with the path. A scenario
/// with no `name` key takes the file's stem as its name.
StatusOr<Scenario> load_scenario(const std::string& path);

/// Sets one sweepable parameter from its canonical text value. Unknown or
/// non-sweepable keys are errors (the supported list is in scenario.cpp and
/// docs/scenarios.md).
Status apply_override(Scenario& scenario, std::string_view key,
                      std::string_view value);

/// Expands the [sweep] cross product (axis order as written). The result
/// scenarios carry derived names, cleared sweep tables, and are validated;
/// a scenario without sweep axes expands to itself.
StatusOr<std::vector<Scenario>> expand_sweep(const Scenario& scenario);

/// Round-trip-exact double formatting (shortest %g that strtod's back).
std::string format_double(double value);

}  // namespace cedr::scenario
