#pragma once
// Golden metric bands: the regression contract of the scenario harness.
//
// A band file (tests/golden/<file-stem>.band.json) records, for every
// scenario a .scn file expands to, an [lo, hi] interval per summary metric:
//
//   { "scenarios": { "<scenario name>": { "<metric>": [lo, hi], ... } } }
//
// `cedr_sweep --regenerate` derives the intervals from a fresh run with a
// margin around each observed value:
//
//   lo = max(0, v - max(|v| * rel, abs)),  hi = v + max(|v| * rel, abs)
//
// so exact counters get a tight band and noisy quantiles a proportional
// one. A later run fails the check when any metric leaves its interval,
// when a banded scenario is missing from the run, or when the run produces
// a scenario the band file has never seen — all reported per metric with
// the offending scenario named (no "something changed" failures).
//
// Summaries contain only virtual-clock metrics, so on any host the same
// scenario file produces the same summary and the bands act as exact
// regression gates with slack reserved for intentional model retuning.

#include <map>
#include <string>
#include <vector>

#include "cedr/common/status.h"
#include "cedr/json/json.h"

namespace cedr::scenario {

/// One scenario's metric summary: metric name -> value, sorted (so
/// serialization and diffs are deterministic).
using MetricSummary = std::map<std::string, double>;

/// Band derivation margins (see the header comment for the formula).
struct BandMargins {
  double rel = 0.05;
  double abs = 1e-6;
};

/// All bands of one band file: scenario name -> metric -> [lo, hi].
struct BandFile {
  std::map<std::string, std::map<std::string, std::pair<double, double>>>
      scenarios;

  [[nodiscard]] json::Value to_json() const;
  static StatusOr<BandFile> from_json(const json::Value& value);
  static StatusOr<BandFile> load(const std::string& path);
  [[nodiscard]] Status save(const std::string& path) const;
};

/// Derives a band file from observed summaries.
BandFile make_bands(const std::map<std::string, MetricSummary>& summaries,
                    const BandMargins& margins);

/// One out-of-band metric (or missing scenario/metric).
struct BandViolation {
  std::string scenario;
  std::string metric;  ///< empty when the whole scenario is missing
  double value = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  /// "out-of-band", "missing-scenario", "new-scenario", "missing-metric",
  /// "new-metric".
  std::string kind;

  /// One-line human rendering naming the scenario and metric.
  [[nodiscard]] std::string to_string() const;
};

/// Result of diffing observed summaries against a band file.
struct BandCheckResult {
  std::vector<BandViolation> violations;
  std::size_t metrics_checked = 0;
  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
};

/// Diffs summaries against bands. Both directions are strict: banded
/// scenarios/metrics absent from the run and run scenarios/metrics absent
/// from the bands are violations, so stale golden files cannot pass.
BandCheckResult check_bands(
    const BandFile& bands,
    const std::map<std::string, MetricSummary>& summaries);

}  // namespace cedr::scenario
