#pragma once
// Scenario execution: compile one parsed Scenario into a fully-seeded
// emulation and reduce its trials to a MetricSummary.
//
// compile_scenario() materializes everything a run needs — platform preset,
// app models (owned by the CompiledScenario so stream pointers stay valid),
// workload streams with closed-loop service estimates, arrival spec, fault
// plan, and the optionally perturbed cost table the scheduler consults
// (sched_cost_scale) — without running anything. run_scenario() then
// executes `trials` seeded emulations (trial t draws arrivals from
// scenario.seed + t * 0x9e3779b9 + 1, matching workload::run_point) and
// aggregates:
//
//   * means of the SimMetrics the figure benchmarks report, plus
//   * p50/p95 of the virtual-clock queue-delay / service-time / sched-round
//     histograms accumulated across all trials, plus
//   * fault counters (when the scenario has a [faults] section) and adapt
//     convergence counters (when [adapt] is enabled).
//
// Everything in the summary lives on the virtual clock, so identical
// scenario files produce byte-identical summaries on any host and across
// any sweep parallelism — the property the golden band gate
// (scenario/band.h) and the determinism tests rely on.

#include <memory>
#include <string>
#include <vector>

#include "cedr/adapt/online_estimator.h"
#include "cedr/common/status.h"
#include "cedr/scenario/band.h"
#include "cedr/scenario/scenario.h"
#include "cedr/sim/model.h"
#include "cedr/sim/simulator.h"
#include "cedr/workload/workload.h"

namespace cedr::scenario {

/// A Scenario lowered to runnable form. Self-contained: owns the app models
/// the streams point into and the perturbed scheduler cost table (if any),
/// so it can be moved to a worker thread and run there without touching the
/// source Scenario.
struct CompiledScenario {
  std::string name;
  std::uint64_t seed = 42;
  std::size_t trials = 1;
  sim::SimConfig config;
  workload::ArrivalSpec arrival;
  std::vector<workload::Stream> streams;
  AdaptSettings adapt;

  /// Owned storage backing `streams[i].app` and `config.sched_costs`.
  std::shared_ptr<const std::vector<sim::SimApp>> apps;
  std::shared_ptr<const platform::CostModel> sched_costs;
};

/// Lowers a validated Scenario. Fails on unknown presets/app kinds (also
/// caught by Scenario::validate()).
StatusOr<CompiledScenario> compile_scenario(const Scenario& scenario);

/// One executed scenario: its summary plus the trial aggregate.
struct ScenarioResult {
  std::string name;
  MetricSummary summary;
  workload::TrialResult trials;
};

/// Runs all trials of a compiled scenario and reduces them to a summary.
StatusOr<ScenarioResult> run_scenario(const CompiledScenario& compiled);

/// Convenience: compile + run.
StatusOr<ScenarioResult> run_scenario(const Scenario& scenario);

/// Runs ONE extra traced emulation of trial 0 and writes its span stream as
/// a Chrome trace-event JSON (virtual-clock timestamps, the repo's track
/// conventions). Deterministic: identical scenarios produce byte-identical
/// trace files.
Status write_scenario_trace(const CompiledScenario& compiled,
                            const std::string& path);

}  // namespace cedr::scenario
