#pragma once
// Workload generation and experiment aggregation (paper §III).
//
// "Injection rate is defined as the rate at which frame instances are
// generated per second and measured in Mbps. We use 29 injection rates
// between 10 and 2000 Mbps, where each injection rate defines a periodic
// rate of job along with its associated input data arrival for the given
// workload." Instances of each application arrive periodically with period
// frame_mbits / rate; trials jitter the phase of each stream and results
// are averaged per the paper's 25-trial procedure.

#include <span>
#include <vector>

#include "cedr/common/rng.h"
#include "cedr/common/status.h"
#include "cedr/sim/model.h"
#include "cedr/sim/simulator.h"

namespace cedr::workload {

/// One periodic application stream within a workload.
struct Stream {
  const sim::SimApp* app = nullptr;
  std::size_t instances = 5;  ///< the paper uses 5 instances of PD and TX
  double start_offset_s = 0.0;
};

/// Builds the arrival sequence for `streams` at `rate_mbps`: instance i of
/// a stream arrives at start_offset + i * (frame_mbits / rate). `jitter`
/// (fraction of the period, uniform in [0, jitter)) staggers instances the
/// way asynchronous submission does on hardware; rng drives it.
std::vector<sim::Arrival> make_arrivals(std::span<const Stream> streams,
                                        double rate_mbps, double jitter,
                                        Rng& rng);

/// The paper's 29-point injection-rate grid, 10..2000 Mbps (log-spaced).
std::vector<double> injection_rate_sweep();

/// Mean metrics over trials at one injection rate.
struct TrialResult {
  double rate_mbps = 0.0;
  std::size_t trials = 0;
  sim::SimMetrics mean;      ///< element-wise mean over trials
  double exec_time_stddev = 0.0;
};

/// Runs `trials` seeded emulations of the workload at one rate and averages
/// the metrics (the paper averages 25 trials per point).
StatusOr<TrialResult> run_point(const sim::SimConfig& config,
                                std::span<const Stream> streams,
                                double rate_mbps, std::size_t trials,
                                std::uint64_t seed_base);

/// Convenience: run_point across an entire rate sweep.
StatusOr<std::vector<TrialResult>> run_sweep(const sim::SimConfig& config,
                                             std::span<const Stream> streams,
                                             std::span<const double> rates,
                                             std::size_t trials,
                                             std::uint64_t seed_base);

}  // namespace cedr::workload
