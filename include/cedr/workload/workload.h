#pragma once
// Workload generation and experiment aggregation (paper §III).
//
// "Injection rate is defined as the rate at which frame instances are
// generated per second and measured in Mbps. We use 29 injection rates
// between 10 and 2000 Mbps, where each injection rate defines a periodic
// rate of job along with its associated input data arrival for the given
// workload." Instances of each application arrive periodically with period
// frame_mbits / rate; trials jitter the phase of each stream and results
// are averaged per the paper's 25-trial procedure.
//
// Beyond the paper's periodic process, the scenario harness
// (docs/scenarios.md) needs arrival shapes that stress schedulers
// differently: open-loop Poisson, bursty MMPP (Markov-modulated Poisson —
// the C-DAG observation that burstiness, not just mean rate, dominates
// scheduler behavior on heterogeneous PEs), and a closed-loop think-time
// population. All four are exposed uniformly through ArrivalSpec +
// generate_arrivals.
//
// Seeding model: every generator derives ONE INDEPENDENT RNG PER STREAM,
//     stream_seed(seed, k) = seed + (k + 1) * 0x9e3779b97f4a7c15
// (Rng's splitmix64 expansion decorrelates the additive seeds), so stream
// k's arrival times depend only on (seed, k, its own parameters). Appending
// a stream to a workload never perturbs the arrivals of the streams already
// present, and run_point's trial t uses seed_base + t * 0x9e3779b9 + 1 as
// `seed`, giving every (trial, stream) pair its own reproducible draw
// sequence.

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "cedr/common/rng.h"
#include "cedr/common/status.h"
#include "cedr/sim/model.h"
#include "cedr/sim/simulator.h"

namespace cedr::workload {

/// One application stream within a workload.
struct Stream {
  const sim::SimApp* app = nullptr;
  std::size_t instances = 5;  ///< the paper uses 5 instances of PD and TX
  double start_offset_s = 0.0;
  /// Closed-loop only: estimated service time of one instance, the busy half
  /// of a client's submit -> complete -> think cycle. The scenario compiler
  /// fills it from the app model's HEFT rank; 0 degenerates to pure
  /// think-time pacing.
  double service_estimate_s = 0.0;
};

/// The arrival process shaping one workload.
enum class ArrivalProcess {
  kPeriodic,    ///< the paper's jittered periodic grid
  kPoisson,     ///< open-loop Poisson at the same mean rate
  kMmpp,        ///< 2-state Markov-modulated Poisson (bursty)
  kClosedLoop,  ///< fixed client population with exponential think times
};

/// Stable name ("periodic", "poisson", "mmpp", "closed").
std::string_view arrival_process_name(ArrivalProcess process) noexcept;
StatusOr<ArrivalProcess> arrival_process_from_name(std::string_view name);

/// Full description of an arrival process. Fields beyond `rate_mbps` apply
/// only to the processes that read them (see each comment).
struct ArrivalSpec {
  ArrivalProcess process = ArrivalProcess::kPeriodic;
  /// Injection rate; a stream's mean inter-arrival is frame_mbits / rate.
  double rate_mbps = 200.0;
  /// kPeriodic: uniform phase jitter as a fraction of the period, in
  /// [0, jitter * period).
  double jitter = 0.2;
  /// kMmpp: burst-state rate multiplier relative to the quiet state
  /// (> 1; the long-run mean rate is held at rate_mbps).
  double burst_ratio = 4.0;
  /// kMmpp: long-run fraction of time spent in the burst state, in (0, 1).
  double burst_fraction = 0.25;
  /// kMmpp: mean quiet+burst modulation cycle in seconds (exponential
  /// dwells of burst_fraction * cycle and (1 - burst_fraction) * cycle).
  double burst_cycle_s = 0.05;
  /// kClosedLoop: mean exponential think time between a client's completion
  /// estimate and its next submission.
  double think_s = 10e-3;
  /// kClosedLoop: clients cycling per stream; instance i belongs to client
  /// i mod clients.
  std::size_t clients = 4;

  [[nodiscard]] Status validate() const;
};

/// RNG seed of stream index `k` under a base seed (see the header comment
/// for the derivation contract).
[[nodiscard]] constexpr std::uint64_t stream_seed(std::uint64_t seed,
                                                  std::size_t k) noexcept {
  return seed + 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(k) + 1);
}

/// Builds the paper's arrival sequence for `streams` at `rate_mbps`:
/// instance i of a stream arrives at start_offset + i * (frame_mbits /
/// rate), plus a uniform [0, jitter * period) phase draw from that stream's
/// derived RNG (stream_seed above) — the way asynchronous submission
/// staggers arrivals on hardware.
std::vector<sim::Arrival> make_arrivals(std::span<const Stream> streams,
                                        double rate_mbps, double jitter,
                                        std::uint64_t seed);

/// Builds the arrival sequence for any ArrivalSpec. Validates the spec;
/// the returned sequence is sorted by time and deterministic in
/// (streams, spec, seed).
StatusOr<std::vector<sim::Arrival>> generate_arrivals(
    std::span<const Stream> streams, const ArrivalSpec& spec,
    std::uint64_t seed);

/// The paper's 29-point injection-rate grid, 10..2000 Mbps (log-spaced).
std::vector<double> injection_rate_sweep();

/// Mean metrics over trials at one injection rate.
struct TrialResult {
  double rate_mbps = 0.0;
  std::size_t trials = 0;
  sim::SimMetrics mean;      ///< element-wise mean over trials
  double exec_time_stddev = 0.0;
};

/// Runs `trials` seeded emulations of the workload at one rate and averages
/// the metrics (the paper averages 25 trials per point). Trial t draws its
/// arrivals from seed_base + t * 0x9e3779b9 + 1.
StatusOr<TrialResult> run_point(const sim::SimConfig& config,
                                std::span<const Stream> streams,
                                double rate_mbps, std::size_t trials,
                                std::uint64_t seed_base);

/// Convenience: run_point across an entire rate sweep.
StatusOr<std::vector<TrialResult>> run_sweep(const sim::SimConfig& config,
                                             std::span<const Stream> streams,
                                             std::span<const double> rates,
                                             std::size_t trials,
                                             std::uint64_t seed_base);

}  // namespace cedr::workload
