#pragma once
// Pluggable scheduling-heuristic interface.
//
// CEDR invokes a user-selected heuristic in its main event loop each
// scheduling round: the heuristic examines the ready queue and the state of
// every PE and produces task->PE assignments. The same Scheduler objects
// drive both the threaded runtime (runtime/) and the discrete-event emulator
// (sim/), so heuristics see only abstract views: no clocks, threads or
// devices. The `comparisons` count a heuristic reports is its decision
// complexity for that round; the emulator converts it into main-thread CPU
// time, which is how the paper's scheduling-overhead trends (Fig. 7)
// reproduce mechanistically.

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "cedr/common/status.h"
#include "cedr/platform/cost_model.h"
#include "cedr/platform/kernel_id.h"
#include "cedr/platform/pe.h"

namespace cedr::sched {

/// A task awaiting assignment, as the heuristic sees it.
struct ReadyTask {
  std::uint64_t task_key = 0;       ///< opaque key the caller maps back
  std::uint64_t app_instance_id = 0;
  platform::KernelId kernel = platform::KernelId::kGeneric;
  std::size_t problem_size = 0;
  std::size_t data_bytes = 0;
  double ready_time = 0.0;  ///< when the task entered the queue
  double rank = 0.0;        ///< HEFT upward rank; 0 when not precomputed
  /// Bit per PeClass: which classes have an implementation of this task
  /// (beyond nominal kernel support — e.g. the FFT IP caps at 2048 points).
  std::uint32_t class_mask = 0xffffffffu;

  [[nodiscard]] bool allowed_on(platform::PeClass cls) const noexcept {
    return (class_mask >> static_cast<unsigned>(cls)) & 1u;
  }
};

/// Mutable per-PE view. Heuristics update available_time as they assign so
/// that later decisions in the same round see earlier ones.
struct PeState {
  std::size_t pe_index = 0;  ///< position in the platform's PE list
  platform::PeClass cls = platform::PeClass::kCpu;
  double available_time = 0.0;  ///< earliest time the PE can start new work
  /// Throughput relative to the class cost table (PeDescriptor::speed_factor).
  double speed = 1.0;
  /// Fault-tolerance: the PE is quarantined after repeated faults and must
  /// receive no assignments this round. Every heuristic excludes it from
  /// its candidate set (the runtime re-admits the PE for probe rounds).
  bool quarantined = false;
};

/// One task->PE decision. queue_index indexes the `ready` span passed to
/// schedule(); each index appears at most once per round.
struct Assignment {
  std::size_t queue_index = 0;
  std::size_t pe_index = 0;  ///< PeState::pe_index of the chosen PE
};

/// Immutable inputs of one scheduling round.
struct ScheduleContext {
  double now = 0.0;
  const platform::CostModel* costs = nullptr;
};

/// Result of one scheduling round.
struct ScheduleResult {
  std::vector<Assignment> assignments;
  /// Number of (task, PE) cost evaluations the heuristic performed; the
  /// emulator charges decision time proportional to this.
  std::uint64_t comparisons = 0;
};

/// Base class for scheduling heuristics.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Heuristic name as used in runtime configuration ("RR", "EFT", ...).
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Assigns ready tasks to PEs. Implementations must only produce
  /// assignments where the PE class supports the task's kernel, and should
  /// assign every assignable task (CEDR drains its ready queue each round).
  virtual ScheduleResult schedule(std::span<const ReadyTask> ready,
                                  std::span<PeState> pes,
                                  const ScheduleContext& ctx) = 0;
};

/// Creates a heuristic by configuration name: "RR", "EFT", "ETF", "HEFT_RT".
StatusOr<std::unique_ptr<Scheduler>> make_scheduler(std::string_view name);

/// All heuristic names make_scheduler accepts, in paper order.
std::span<const std::string_view> scheduler_names() noexcept;

}  // namespace cedr::sched
