#pragma once
// Pluggable scheduling-heuristic interface.
//
// CEDR invokes a user-selected heuristic in its main event loop each
// scheduling round: the heuristic examines the ready queue and the state of
// every PE and produces task->PE assignments. The same Scheduler objects
// drive both the threaded runtime (runtime/) and the discrete-event emulator
// (sim/), so heuristics see only abstract views: no clocks, threads or
// devices. The `comparisons` count a heuristic reports is its decision
// complexity for that round; the emulator converts it into main-thread CPU
// time, which is how the paper's scheduling-overhead trends (Fig. 7)
// reproduce mechanistically.

#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "cedr/common/status.h"
#include "cedr/platform/cost_model.h"
#include "cedr/platform/kernel_id.h"
#include "cedr/platform/pe.h"

namespace cedr::sched {

/// A task awaiting assignment, as the heuristic sees it.
struct ReadyTask {
  std::uint64_t task_key = 0;       ///< opaque key the caller maps back
  std::uint64_t app_instance_id = 0;
  platform::KernelId kernel = platform::KernelId::kGeneric;
  std::size_t problem_size = 0;
  std::size_t data_bytes = 0;
  double ready_time = 0.0;  ///< when the task entered the queue
  double rank = 0.0;        ///< HEFT upward rank; 0 when not precomputed
  /// Bit per PeClass: which classes have an implementation of this task
  /// (beyond nominal kernel support — e.g. the FFT IP caps at 2048 points).
  std::uint32_t class_mask = 0xffffffffu;

  [[nodiscard]] bool allowed_on(platform::PeClass cls) const noexcept {
    return (class_mask >> static_cast<unsigned>(cls)) & 1u;
  }
};

/// Mutable per-PE view. Heuristics update available_time as they assign so
/// that later decisions in the same round see earlier ones.
struct PeState {
  std::size_t pe_index = 0;  ///< position in the platform's PE list
  platform::PeClass cls = platform::PeClass::kCpu;
  double available_time = 0.0;  ///< earliest time the PE can start new work
  /// Throughput relative to the class cost table (PeDescriptor::speed_factor).
  double speed = 1.0;
  /// Fault-tolerance: the PE is quarantined after repeated faults and must
  /// receive no assignments this round. Every heuristic excludes it from
  /// its candidate set (the runtime re-admits the PE for probe rounds).
  bool quarantined = false;
};

/// One task->PE decision. queue_index indexes the `ready` span passed to
/// schedule(); each index appears at most once per round.
struct Assignment {
  std::size_t queue_index = 0;
  std::size_t pe_index = 0;  ///< PeState::pe_index of the chosen PE
};

/// Immutable inputs of one scheduling round.
struct ScheduleContext {
  double now = 0.0;
  const platform::CostModel* costs = nullptr;
};

/// Result of one scheduling round.
struct ScheduleResult {
  std::vector<Assignment> assignments;
  /// Number of (task, PE) cost evaluations the heuristic performed; the
  /// emulator charges decision time proportional to this.
  std::uint64_t comparisons = 0;
};

/// Precomputed per-class candidate structure for one scheduling round
/// (docs/scheduling.md). Built once from the merged ready snapshot, it gives
/// every heuristic:
///
///   * per-task eligible-PE slot lists, so ineligible (task, PE) pairs are
///     skipped up front instead of being probed one by one;
///   * per-(task, class) cost estimates evaluated once per class instead of
///     once per PE — the arithmetic (class estimate / pe.speed) is identical
///     to the legacy per-pair evaluation, so assignments are unchanged;
///   * an optional class restriction (`admit_mask`) so a heuristic can be
///     invoked per-shard over a subset of the PE pool.
///
/// Two eligibility predicates exist because the heuristics historically used
/// two: RR and RANDOM probe nominal kernel support
/// (platform::pe_class_supports), while the cost-aware heuristics admit any
/// pairing whose cost-table estimate is finite. Both also require
/// ReadyTask::allowed_on and exclude quarantined PEs.
///
/// The view is built per round and used by one thread; it is not
/// thread-safe. `pes()` exposes the caller's PeState array mutably so
/// heuristics keep updating available_time in place.
///
/// Construction is allocation-conscious: reset() reuses every internal
/// buffer (Scheduler::schedule keeps one thread_local view warm across
/// rounds, so steady-state rounds allocate nothing), and the cost side
/// (per-class estimates, cost eligibility) is evaluated lazily on first
/// access — RR and RANDOM decide from nominal kernel support and never pay
/// for a single cost-table lookup.
class CandidateView {
 public:
  static constexpr std::uint32_t kAdmitAll = 0xffffffffu;

  CandidateView() = default;
  CandidateView(std::span<const ReadyTask> ready, std::span<PeState> pes,
                const ScheduleContext& ctx,
                std::uint32_t admit_mask = kAdmitAll) {
    reset(ready, pes, ctx, admit_mask);
  }

  /// Rebuilds the view for a new round, reusing internal buffer capacity.
  /// The spans must stay valid for as long as the view is read.
  void reset(std::span<const ReadyTask> ready, std::span<PeState> pes,
             const ScheduleContext& ctx,
             std::uint32_t admit_mask = kAdmitAll);

  [[nodiscard]] std::span<const ReadyTask> ready() const noexcept {
    return ready_;
  }
  [[nodiscard]] std::span<PeState> pes() const noexcept { return pes_; }
  [[nodiscard]] const ScheduleContext& ctx() const noexcept { return *ctx_; }

  /// Queue indices admitted by the view, in queue order. An unrestricted
  /// view admits every task — including unassignable ones, which the legacy
  /// comparison formulas count — so `tasks().size()` is the Q of those
  /// formulas (served from a shared iota table, not per-round stores). A
  /// restricted view admits only tasks eligible on an admitted class.
  [[nodiscard]] std::span<const std::size_t> tasks() const noexcept {
    return task_span_;
  }

  /// Number of PEs in the admitted pool, quarantined included — the P of
  /// the legacy comparison formulas (pes().size() when unrestricted).
  [[nodiscard]] std::size_t pe_count() const noexcept {
    return admitted_slots_.size();
  }

  /// Admitted PE slots (indices into pes()), ascending, quarantined
  /// included — RR's rotation space.
  [[nodiscard]] std::span<const std::size_t> admitted_slots() const noexcept {
    return admitted_slots_;
  }

  /// Rotation position of an admitted slot within admitted_slots().
  [[nodiscard]] std::size_t rotation_position(std::size_t slot) const noexcept;

  /// Admitted, non-quarantined PE slots of one class, ascending.
  [[nodiscard]] std::span<const std::size_t> class_slots(
      platform::PeClass cls) const noexcept {
    return class_slots_[static_cast<std::size_t>(cls)];
  }

  /// Slots where task q may run under the support predicate (RR/RANDOM):
  /// admitted && !quarantined && pe_class_supports && allowed_on. Ascending.
  [[nodiscard]] std::span<const std::size_t> support_eligible(
      std::size_t q) const {
    return merged_slots(support_mask_[q]);
  }
  /// Slots where task q may run under the cost predicate (EFT/ETF/HEFT_RT/
  /// MET): admitted && !quarantined && allowed_on && finite estimate.
  [[nodiscard]] std::span<const std::size_t> cost_eligible(
      std::size_t q) const {
    return merged_slots(cost_mask(q));
  }

  [[nodiscard]] std::uint32_t support_mask(std::size_t q) const noexcept {
    return support_mask_[q];
  }
  [[nodiscard]] std::uint32_t cost_mask(std::size_t q) const {
    const std::uint32_t allowed =
        ready_[q].class_mask & admit_mask_ & kClassBits;
    return kind_costs(q).finite_mask & allowed;
  }

  /// Cached class-table estimate for (task q, class cls), in seconds at
  /// speed 1.0; +infinity when the pairing is inadmissible.
  [[nodiscard]] double class_estimate(std::size_t q,
                                      platform::PeClass cls) const {
    return kind_costs(q).est[static_cast<std::size_t>(cls)];
  }

  /// Execution estimate of task q on `pe` — bit-identical arithmetic to the
  /// legacy per-pair evaluation (class estimate / pe.speed).
  [[nodiscard]] double exec_estimate(std::size_t q,
                                     const PeState& pe) const {
    return class_estimate(q, pe.cls) / pe.speed;
  }

  /// All per-class estimates of task q's kind at once — one kind lookup for
  /// a whole PE scan instead of one per slot. Entries for inadmissible
  /// classes are +infinity; cost_eligible() already excludes their slots.
  [[nodiscard]] const std::array<double, platform::kNumPeClasses>&
  class_estimates(std::size_t q) const {
    return kind_costs(q).est;
  }

  /// Finish time of task q started on `pe` no earlier than ctx().now.
  [[nodiscard]] double finish_time_on(std::size_t q, const PeState& pe) const;

 private:
  /// One distinct (kernel, size, bytes) shape in this round's queue. DAG
  /// mode floods the queue with hundreds of copies of a handful of kinds,
  /// so per-kind memoization turns Q*C table evaluations into kinds*C.
  struct Kind {
    platform::KernelId kernel = platform::KernelId::kGeneric;
    std::size_t size = 0;
    std::size_t bytes = 0;
    std::array<double, platform::kNumPeClasses> est{};
    std::uint32_t finite_mask = 0;  ///< classes with a finite estimate
    bool costs_done = false;        ///< est/finite_mask populated
  };

  [[nodiscard]] std::span<const std::size_t> merged_slots(
      std::uint32_t class_mask) const;

  /// Cost side of task q's kind, populated on first use — one table
  /// evaluation per (kind, class), and only for kinds a heuristic actually
  /// prices. Kind identification itself is lazy too, so reset() does no
  /// per-task (kernel, size, bytes) searching; support-only heuristics pay
  /// for neither.
  [[nodiscard]] const Kind& kind_costs(std::size_t q) const {
    std::uint32_t k = kind_of_[q];
    if (k == kNoKind) k = identify_kind(q);
    Kind& kind = kinds_[k];
    if (!kind.costs_done) compute_kind_costs(kind);
    return kind;
  }
  std::uint32_t identify_kind(std::size_t q) const;
  void compute_kind_costs(Kind& kind) const;

  static constexpr std::uint32_t kNoKind =
      std::numeric_limits<std::uint32_t>::max();

  static constexpr std::uint32_t kClassBits =
      (1u << platform::kNumPeClasses) - 1u;

  std::span<const ReadyTask> ready_;
  std::span<PeState> pes_;
  const ScheduleContext* ctx_ = nullptr;
  std::uint32_t admit_mask_ = kAdmitAll;
  std::uint32_t slotted_classes_ = 0;  ///< classes with >= 1 eligible slot

  std::vector<std::size_t> task_indices_;  ///< restricted views only
  std::vector<std::size_t> iota_;          ///< grown monotonically, 0..max Q
  std::span<const std::size_t> task_span_;
  std::vector<std::size_t> admitted_slots_;
  bool admitted_is_identity_ = true;
  std::array<std::vector<std::size_t>, platform::kNumPeClasses> class_slots_;
  std::vector<std::uint8_t> support_mask_;

  /// Kind cache: flat + linearly searched (a round sees few distinct
  /// kinds, so this beats a hash map and reuses its storage across resets).
  mutable std::vector<Kind> kinds_;
  /// task index -> kinds_ index, kNoKind until first priced.
  mutable std::vector<std::uint32_t> kind_of_;

  /// Lazily merged eligible-slot lists, one per class-mask value.
  static constexpr std::size_t kMaskSpace = 1u << platform::kNumPeClasses;
  mutable std::array<std::vector<std::size_t>, kMaskSpace> merged_;
  mutable std::array<bool, kMaskSpace> merged_built_{};
  mutable std::vector<std::size_t> merge_scratch_;
};

/// Base class for scheduling heuristics.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Heuristic name as used in runtime configuration ("RR", "EFT", ...).
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Assigns ready tasks to PEs. Implementations must only produce
  /// assignments where the PE class supports the task's kernel, and should
  /// assign every assignable task (CEDR drains its ready queue each round).
  /// Builds an unrestricted CandidateView and runs the heuristic over it;
  /// assignments and `comparisons` are identical to the historical
  /// direct-scan implementations. Virtual so a heuristic that never reads
  /// the view's cost side (RR) can skip building it entirely — overrides
  /// must keep assignments and comparisons bit-identical to this path.
  virtual ScheduleResult schedule(std::span<const ReadyTask> ready,
                                  std::span<PeState> pes,
                                  const ScheduleContext& ctx) {
    // One warm workspace per scheduling thread: after the first rounds the
    // view's buffers reach steady-state capacity and a round allocates
    // nothing. Heuristics never re-enter schedule() from schedule(view).
    thread_local CandidateView view;
    view.reset(ready, pes, ctx);
    return schedule(view);
  }

  /// Per-shard invocation: restricts candidates to PE classes in
  /// `class_mask` (bit per platform::PeClass). Tasks not eligible on an
  /// admitted class are skipped entirely and `comparisons` is accounted
  /// against the restricted pool (docs/scheduling.md).
  ScheduleResult schedule_shard(std::span<const ReadyTask> ready,
                                std::span<PeState> pes,
                                const ScheduleContext& ctx,
                                std::uint32_t class_mask) {
    thread_local CandidateView view;
    view.reset(ready, pes, ctx, class_mask);
    return schedule(view);
  }

  /// Heuristic entry point over a prebuilt candidate view.
  virtual ScheduleResult schedule(CandidateView& view) = 0;
};

/// Creates a heuristic by configuration name: "RR", "EFT", "ETF", "HEFT_RT".
StatusOr<std::unique_ptr<Scheduler>> make_scheduler(std::string_view name);

/// All heuristic names make_scheduler accepts, in paper order.
std::span<const std::string_view> scheduler_names() noexcept;

}  // namespace cedr::sched
