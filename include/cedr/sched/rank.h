#pragma once
// HEFT upward-rank computation.
//
// HEFT_RT orders ready tasks by their precomputed *upward rank*: the length
// of the longest (average-cost) path from a task to the DAG exit. Ranks are
// computed once per application descriptor at submission time and attached
// to every instance's ReadyTask entries.

#include <unordered_map>

#include "cedr/platform/cost_model.h"
#include "cedr/platform/platform.h"
#include "cedr/task/task.h"

namespace cedr::sched {

/// rank_u(t) = avg_exec(t) + max over successors s of rank_u(s), where
/// avg_exec averages the cost-model estimate over the PEs in `platform`
/// that support the task's kernel. Communication costs are folded into the
/// accelerator transfer terms of the cost model.
std::unordered_map<task::TaskId, double> upward_ranks(
    const task::TaskGraph& graph, const platform::PlatformConfig& platform);

/// Average execution estimate of one task across supporting PEs.
double average_execution(const task::Task& t,
                         const platform::PlatformConfig& platform) noexcept;

}  // namespace cedr::sched
