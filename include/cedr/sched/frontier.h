#pragma once
// Frontier lookahead scheduling (docs/scheduling.md "Lookahead rounds").
//
// A classic scheduling round sees only the ready queue: tasks whose
// predecessors have all completed. DAG applications expose much more — the
// cached DagPlan skeleton knows every not-yet-ready successor, its HEFT
// rank and its predecessor set. A `Frontier` widens one round's view to
// that window: the ready snapshot first (so Assignment::queue_index keeps
// its meaning), then successors within a bounded lookahead depth whose
// uncompleted predecessors are all inside the window.
//
// A `LookaheadScheduler` places the whole window in one pass. Placements
// for ready tasks dispatch immediately, exactly like a classic round;
// placements for not-yet-ready tasks come back as `Reservation`s — the
// caller records them and, when the task's predecessors complete, dispatches
// straight to the reserved PE without another scheduling round. A staleness
// check (quarantine / cost-snapshot epoch) returns invalidated reservations
// to the normal ready path.
//
// Two heuristics implement the interface:
//
//   HEFT_LA — full HEFT over the window: upward-rank order (depth breaks
//             rank ties so predecessors always place first), per-PE busy
//             timelines, and insertion-based slot packing that can tuck a
//             short lookahead task into a gap before an already-reserved
//             long one. Ready tasks place with plain earliest-finish
//             against running availability — they dispatch into worker
//             FIFOs immediately, so sub-slot packing cannot change when
//             they actually run and would only burn decision time.
//   EFT_LA  — batched EFT: window FIFO order, earliest-finish placement
//             with incremental availability updates; the cheap variant.
//
// Both reuse the CandidateView cost memoization, so comparison accounting
// stays auditable: EFT_LA charges P per task like EFT, HEFT_LA charges
// W*log2(W) + P*W like HEFT_RT.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "cedr/sched/heuristics.h"
#include "cedr/sched/scheduler.h"

namespace cedr::sched {

/// One round's scheduling window: the ready snapshot plus not-yet-ready
/// successors within the lookahead depth. Built fresh each round (buffers
/// are reused across reset() calls); not thread-safe.
class Frontier {
 public:
  /// Starts a new window. The PeState span and context must outlive the
  /// round, exactly as with Scheduler::schedule().
  void reset(std::span<PeState> pes, const ScheduleContext& ctx);

  /// Appends one ready task. All ready tasks must be added before any
  /// lookahead task, in ready-snapshot order, so window indices below
  /// ready_count() coincide with Assignment::queue_index.
  void add_ready(const ReadyTask& view);

  /// Appends one not-yet-ready task at `depth` >= 1 whose in-window
  /// predecessors are the window indices in `preds` (all of them — a task
  /// belongs in the window only when every uncompleted predecessor is
  /// already inside it). Returns the new task's window index.
  std::size_t add_lookahead(const ReadyTask& view, std::uint32_t depth,
                            std::span<const std::size_t> preds);

  /// Stages a predecessor set shared by several lookahead tasks — e.g. a
  /// barrier level whose every task depends on the whole previous level.
  /// The set is stored once and the schedulers memoize the earliest-start
  /// scan per set, so a level of N tasks pays one predecessor copy and one
  /// scan instead of N. Returns the set id for add_lookahead_staged.
  std::uint32_t stage_preds(std::span<const std::size_t> preds);

  /// add_lookahead against a staged predecessor set (see stage_preds). All
  /// members of one set must be added consecutively (no interleaving with
  /// other add_* calls) — they form one barrier level, and the schedulers
  /// exploit the resulting contiguous window-index range.
  std::size_t add_lookahead_staged(const ReadyTask& view, std::uint32_t depth,
                                   std::uint32_t pred_set);

  /// No shared predecessor set: preds are private to the task.
  static constexpr std::uint32_t kNoPredSet = 0xffffffffu;

  [[nodiscard]] std::span<const ReadyTask> views() const noexcept {
    return views_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return views_.size(); }
  [[nodiscard]] std::size_t ready_count() const noexcept {
    return ready_count_;
  }
  /// 0 for ready tasks, 1 + max(predecessor depth) for lookahead tasks.
  [[nodiscard]] std::uint32_t depth(std::size_t i) const noexcept {
    return depth_[i];
  }
  /// In-window predecessor indices of window task i (empty for ready tasks).
  [[nodiscard]] std::span<const std::size_t> preds(std::size_t i) const {
    const auto& [begin, end] = pred_range_[i];
    return std::span<const std::size_t>(pred_pool_).subspan(begin, end - begin);
  }
  /// Staged-set id task i shares with its level, or kNoPredSet.
  [[nodiscard]] std::uint32_t pred_set(std::size_t i) const noexcept {
    return pred_set_[i];
  }
  [[nodiscard]] std::size_t pred_set_count() const noexcept {
    return staged_.size();
  }
  /// Contiguous window-index range of the set's member tasks:
  /// {first index, count}. Meaningful once at least one member was added.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> set_members(
      std::uint32_t set) const noexcept {
    return set_members_[set];
  }
  [[nodiscard]] std::span<PeState> pes() const noexcept { return pes_; }
  [[nodiscard]] const ScheduleContext& ctx() const noexcept { return *ctx_; }

 private:
  std::vector<ReadyTask> views_;
  std::vector<std::uint32_t> depth_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pred_range_;
  std::vector<std::uint32_t> pred_set_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> staged_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> set_members_;
  std::vector<std::size_t> pred_pool_;
  std::size_t ready_count_ = 0;
  std::span<PeState> pes_;
  const ScheduleContext* ctx_ = nullptr;
};

/// A placement decided ahead of readiness. `window_index` >= ready_count();
/// the caller maps it back to its (app, dag task) identity and honors the
/// placement when the predecessors complete, unless it has gone stale.
struct Reservation {
  std::size_t window_index = 0;
  std::size_t pe_index = 0;         ///< PeState::pe_index of the chosen PE
  double predicted_start = 0.0;
  double predicted_finish = 0.0;
};

/// Result of one frontier-wide round: immediate assignments for ready
/// tasks (queue_index semantics unchanged) plus reservations for the
/// lookahead portion of the window.
struct FrontierResult {
  std::vector<Assignment> assignments;
  std::vector<Reservation> reservations;
  std::uint64_t comparisons = 0;
};

/// Base for heuristics that place a whole lookahead window per round. The
/// inherited per-CandidateView entry point stays available (and is used for
/// API-mode tasks, shard calls and plain ready-only rounds), so a
/// LookaheadScheduler is always a drop-in Scheduler.
class LookaheadScheduler : public Scheduler {
 public:
  using Scheduler::schedule;
  virtual FrontierResult schedule_window(Frontier& frontier) = 0;
};

/// HEFT_LA — full HEFT over the visible window (header comment above).
class HeftLaScheduler final : public LookaheadScheduler {
 public:
  using Scheduler::schedule;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "HEFT_LA";
  }
  /// Ready-only fallback: identical to HEFT_RT (rank order, EFT placement).
  ScheduleResult schedule(CandidateView& view) override {
    return fallback_.schedule(view);
  }
  FrontierResult schedule_window(Frontier& frontier) override;

 private:
  HeftRtScheduler fallback_;
  // Round-local scratch, reused so steady-state rounds allocate nothing.
  struct SortKey {
    double neg_rank;
    std::uint64_t depth_index;
  };
  std::vector<SortKey> sort_keys_;
  std::vector<std::size_t> order_;
  std::vector<double> finish_;
  std::vector<double> ready_finish_;
  std::vector<double> avail_;
  std::vector<double> set_est_;
  std::vector<double> tail_;
  std::vector<double> cand_start_;
  std::vector<double> cand_fin_;
  std::vector<double> inv_speed_;
  std::vector<std::size_t> cls_of_;
  std::vector<std::vector<std::pair<double, double>>> timelines_;
};

/// EFT_LA — batched EFT over the window (header comment above).
class EftLaScheduler final : public LookaheadScheduler {
 public:
  using Scheduler::schedule;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "EFT_LA";
  }
  /// Ready-only fallback: identical to EFT.
  ScheduleResult schedule(CandidateView& view) override {
    return fallback_.schedule(view);
  }
  FrontierResult schedule_window(Frontier& frontier) override;

 private:
  EftScheduler fallback_;
  std::vector<double> finish_;
  std::vector<double> ready_finish_;
  std::vector<double> avail_;
  std::vector<double> set_est_;
  std::vector<double> inv_speed_;
  std::vector<std::size_t> cls_of_;
};

}  // namespace cedr::sched
