#pragma once
// Per-class sharded ready queue (docs/scheduling.md).
//
// The scheduling core's shared state used to be one deque under one global
// mutex; every submitter, the main event loop, and every stats poll
// serialized on it. ReadyQueueShards splits the queue by *eligible PE
// class*: a task whose effective class mask names exactly one class lives in
// that class's shard, everything else (multi-class or unconstrained tasks)
// lives in a shared overflow shard. Each shard has its own mutex, so
// producers pushing work for disjoint classes never contend, and queue-depth
// reads are lock-free atomics.
//
// Determinism: every push stamps a monotonically increasing sequence number,
// and snapshot() merges the shards back into global FIFO (push) order — the
// exact order the legacy single deque presented. Both the threaded runtime
// and the discrete-event emulator schedule from these snapshots, which is
// how golden traces stay byte-identical across the shard refactor.
//
// Payloads are opaque shared_ptrs (the runtime stores InFlightTask, the
// emulator its SimTask) so the component lives in sched/ without depending
// on either caller.

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "cedr/obs/metrics.h"
#include "cedr/sched/scheduler.h"

namespace cedr::sched {

class ReadyQueueShards {
 public:
  /// Shard index of multi-class / unconstrained tasks.
  static constexpr std::size_t kMultiShard = platform::kNumPeClasses;
  static constexpr std::size_t kShardCount = platform::kNumPeClasses + 1;

  /// One queued task: the scheduler-facing view (class_mask already
  /// narrowed to the effective eligibility), the caller's payload, and the
  /// global FIFO position.
  struct Entry {
    ReadyTask view;
    std::shared_ptr<void> payload;
    std::uint64_t seq = 0;
    std::uint8_t shard = 0;
  };

  /// A merged, globally FIFO-ordered copy of the queue, taken shard by
  /// shard. `views[i]` mirrors `entries[i].view` so the heuristics get a
  /// contiguous ReadyTask span without a second copy.
  struct Snapshot {
    std::vector<Entry> entries;
    std::vector<ReadyTask> views;
    [[nodiscard]] bool empty() const noexcept { return entries.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return entries.size(); }
  };

  /// `lock_wait_us`, when non-null, records every *contended* shard-lock
  /// acquisition's wait in microseconds (the `sched_lock_wait_us` histogram
  /// of docs/observability.md). Uncontended acquisitions record nothing.
  explicit ReadyQueueShards(
      obs::QuantileHistogram* lock_wait_us = nullptr) noexcept
      : lock_wait_us_(lock_wait_us) {}

  ReadyQueueShards(const ReadyQueueShards&) = delete;
  ReadyQueueShards& operator=(const ReadyQueueShards&) = delete;

  /// Which shard an effective class mask routes to: single-class masks to
  /// that class's shard, everything else to kMultiShard.
  [[nodiscard]] static std::size_t shard_for(
      std::uint32_t effective_mask) noexcept;

  /// Enqueues one task. `view.class_mask` must already be the effective
  /// mask (implementation classes, narrowed by failed classes with the
  /// present-class fallback) — shard routing and the heuristics both read
  /// it as-is.
  void push(const ReadyTask& view, std::shared_ptr<void> payload);

  /// One enqueued-task request for push_batch.
  struct PushItem {
    ReadyTask view;
    std::shared_ptr<void> payload;
  };

  /// Enqueues many tasks with one sequence-range reservation and at most one
  /// lock acquisition per touched shard. Items land in global FIFO order
  /// exactly as if push() had been called element by element, so a batch
  /// submit of N head tasks is indistinguishable to the scheduler from N
  /// singleton submits.
  void push_batch(std::span<PushItem> items);

  /// Copies the whole queue in global FIFO order.
  [[nodiscard]] Snapshot snapshot() const;

  /// Removes previously snapshotted entries (matched by shard + seq);
  /// entries pushed after the snapshot are untouched. Call after dispatch.
  void remove(std::span<const Entry> taken);

  /// Total queued tasks; lock-free.
  [[nodiscard]] std::size_t size() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }

  /// Per-shard depths; lock-free. Index by PeClass, kMultiShard last.
  [[nodiscard]] std::array<std::size_t, kShardCount> depths() const noexcept;

  /// Display name of one shard ("cpu", "fft", ..., "multi").
  [[nodiscard]] static std::string_view shard_name(std::size_t shard) noexcept;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::deque<Entry> entries;
  };

  /// Locks a shard, timing the wait when the fast path loses the race.
  [[nodiscard]] std::unique_lock<std::mutex> acquire(const Shard& s) const;

  std::array<Shard, kShardCount> shards_;
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::size_t> total_{0};
  std::array<std::atomic<std::size_t>, kShardCount> depths_{};
  obs::QuantileHistogram* lock_wait_us_ = nullptr;
};

}  // namespace cedr::sched
