#pragma once
// The four scheduling heuristics evaluated in the paper (§III):
//
//   RR      — Round Robin: fair rotation over compatible PEs; ignores cost.
//   EFT     — Earliest Finish Time: FIFO over tasks, each placed on the PE
//             minimizing its finish time.
//   ETF     — Earliest Task First: globally searches all (task, PE) pairs
//             each step for the earliest-finishing pair; O(Q^2 * P) per
//             round, which is why its overhead tracks ready-queue size.
//   HEFT_RT — runtime variant of Heterogeneous Earliest Finish Time
//             (Mack et al., TPDS 2022): tasks ordered by upward rank, then
//             EFT placement.
//
// All heuristics consume a CandidateView (docs/scheduling.md): ineligible
// (task, PE) pairs are pruned up front and cost estimates are evaluated
// once per class instead of once per PE. Assignments and the reported
// `comparisons` counts are identical to the historical per-pair scans —
// the comparisons number remains the *naive* decision complexity, which is
// what the emulator charges as virtual decision time (Fig. 7).

#include "cedr/common/rng.h"
#include "cedr/sched/scheduler.h"

namespace cedr::sched {

class RoundRobinScheduler final : public Scheduler {
 public:
  using Scheduler::schedule;
  [[nodiscard]] std::string_view name() const noexcept override { return "RR"; }
  ScheduleResult schedule(CandidateView& view) override;
  /// Fast path: RR never reads the view's cost side, so the unrestricted
  /// round skips CandidateView construction and probes PEs directly (the
  /// pre-view flat path). Assignments and comparison counts are identical
  /// to the view path; tests/test_sched_lookahead.cpp asserts it.
  ScheduleResult schedule(std::span<const ReadyTask> ready,
                          std::span<PeState> pes,
                          const ScheduleContext& ctx) override;

 private:
  std::size_t next_pe_ = 0;  ///< rotation cursor persisted across rounds
};

class EftScheduler final : public Scheduler {
 public:
  using Scheduler::schedule;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "EFT";
  }
  ScheduleResult schedule(CandidateView& view) override;
};

class EtfScheduler final : public Scheduler {
 public:
  using Scheduler::schedule;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "ETF";
  }
  ScheduleResult schedule(CandidateView& view) override;
};

class HeftRtScheduler final : public Scheduler {
 public:
  using Scheduler::schedule;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "HEFT_RT";
  }
  ScheduleResult schedule(CandidateView& view) override;
};

/// Shared helper: finish time of `t` if started on `pe` no earlier than now.
/// Returns +infinity for unsupported pairings.
double finish_time_on(const ReadyTask& t, const PeState& pe,
                      const ScheduleContext& ctx) noexcept;

// Beyond the paper's four, the wider CEDR ecosystem (DS3, Mack et al.
// TPDS 2022) evaluates two simpler baselines, provided here for ablations:

/// MET — Minimum Execution Time: each task goes to the PE with the lowest
/// *execution* estimate, ignoring queue availability entirely (the greedy
/// static-mapping strawman the paper's introduction argues against).
class MetScheduler final : public Scheduler {
 public:
  using Scheduler::schedule;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "MET";
  }
  ScheduleResult schedule(CandidateView& view) override;
};

/// RANDOM — uniformly random compatible PE per task; the no-information
/// floor for scheduler comparisons. Deterministically seeded.
class RandomScheduler final : public Scheduler {
 public:
  using Scheduler::schedule;
  explicit RandomScheduler(std::uint64_t seed = 0x5eedu) : rng_(seed) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "RANDOM";
  }
  ScheduleResult schedule(CandidateView& view) override;

 private:
  Rng rng_;
};

}  // namespace cedr::sched
