#pragma once
// Schedulable task model.
//
// A task is CEDR's unit of scheduling: one node of a DAG-based application
// or one libCEDR API call from an API-based application. Tasks carry (a) an
// abstract identity (kernel id + problem size) that schedulers and cost
// models consume, and (b) concrete per-PE-class implementations that the
// threaded runtime invokes — mirroring how CEDR "dynamically updates that
// task's function pointer such that its worker thread invokes a function
// that is compatible with that resource" (paper §II-A).

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cedr/common/status.h"
#include "cedr/platform/kernel_id.h"
#include "cedr/platform/mmio_device.h"
#include "cedr/platform/pe.h"

namespace cedr::task {

using TaskId = std::uint64_t;

/// Handed to a task implementation at dispatch time.
struct ExecContext {
  /// The PE this execution was scheduled onto.
  const platform::PeDescriptor* pe = nullptr;
  /// The accelerator device backing that PE; nullptr for CPU PEs.
  platform::MmioDevice* device = nullptr;
};

/// One per-PE-class implementation of a task.
using TaskFn = std::function<Status(ExecContext&)>;

/// A schedulable unit of computation.
struct Task {
  TaskId id = 0;
  std::string name;
  platform::KernelId kernel = platform::KernelId::kGeneric;
  /// Cost-model problem size: element count for FFT/ZIP, m*k*n for MMULT,
  /// reference-core nanoseconds for GENERIC.
  std::size_t problem_size = 0;
  /// Bytes moved to/from an accelerator if one executes this task.
  std::size_t data_bytes = 0;
  /// Implementation per PE class; an empty slot means "not runnable there"
  /// even if the class nominally supports the kernel.
  std::array<TaskFn, platform::kNumPeClasses> impls{};

  /// Installs `fn` as the implementation for `cls`.
  void set_impl(platform::PeClass cls, TaskFn fn) {
    impls[static_cast<std::size_t>(cls)] = std::move(fn);
  }
  /// True when the task can execute on `cls`: the class supports the kernel
  /// and an implementation is present (timing-only tasks with no impls at
  /// all are runnable anywhere the kernel is supported).
  [[nodiscard]] bool runnable_on(platform::PeClass cls) const noexcept {
    if (!platform::pe_class_supports(cls, kernel)) return false;
    bool any_impl = false;
    for (const TaskFn& fn : impls) {
      if (fn) {
        any_impl = true;
        break;
      }
    }
    return !any_impl || static_cast<bool>(impls[static_cast<std::size_t>(cls)]);
  }
};

/// Directed acyclic graph of tasks: one application's structure.
class TaskGraph {
 public:
  /// Adds a task; its id must be unique within the graph.
  Status add_task(Task task);
  /// Adds a dependency edge: `to` cannot start until `from` completes.
  Status add_edge(TaskId from, TaskId to);

  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
  [[nodiscard]] bool contains(TaskId id) const noexcept;
  [[nodiscard]] const Task& get(TaskId id) const;
  [[nodiscard]] Task& get(TaskId id);
  [[nodiscard]] const std::vector<Task>& tasks() const noexcept {
    return tasks_;
  }

  [[nodiscard]] const std::vector<TaskId>& successors(TaskId id) const;
  [[nodiscard]] const std::vector<TaskId>& predecessors(TaskId id) const;
  /// Tasks with no predecessors (the DAG "head nodes" CEDR enqueues when an
  /// application is launched).
  [[nodiscard]] std::vector<TaskId> head_nodes() const;

  /// Checks acyclicity and edge validity; returns a topological order.
  [[nodiscard]] StatusOr<std::vector<TaskId>> topological_order() const;

  /// Storage index of a task id (the position in tasks()). Lets callers
  /// precompute index-based per-instance state (predecessor counts, ranks)
  /// once per descriptor instead of re-hashing TaskIds per instance.
  [[nodiscard]] std::size_t index_of(TaskId id) const;

 private:
  std::vector<Task> tasks_;
  std::vector<std::vector<TaskId>> successors_;
  std::vector<std::vector<TaskId>> predecessors_;
  std::unordered_map<TaskId, std::size_t> index_;
};

/// A named application: its DAG plus bookkeeping metadata.
struct AppDescriptor {
  std::string name;
  TaskGraph graph;
};

}  // namespace cedr::task
