#pragma once
// JSON DAG application format (the DAG-based programming model).
//
// In DAG-based CEDR, a compiled application is a shared object plus a JSON
// file that "captures temporal dependencies between nodes and high level
// control flow of the user's application" (paper §II-A). This module defines
// that JSON schema and converts documents to/from task::AppDescriptor.
//
// Schema:
// {
//   "app_name": "pulse_doppler",
//   "tasks": [
//     { "id": 0, "name": "range_fft_0", "kernel": "FFT",
//       "size": 256, "bytes": 2048, "predecessors": [] },
//     { "id": 1, "name": "peak", "kernel": "GENERIC",
//       "size": 20000, "bytes": 0, "predecessors": [0] }
//   ]
// }

#include <string>

#include "cedr/common/status.h"
#include "cedr/json/json.h"
#include "cedr/task/task.h"

namespace cedr::task {

/// Parses an application from its JSON DAG document. Validates kernel names,
/// edge references and acyclicity. Implementations (Task::impls) are not
/// populated: in DAG-based CEDR those come from the shared object; callers
/// bind them by task name afterwards (see runtime::bind_impls).
StatusOr<AppDescriptor> app_from_json(const json::Value& doc);

/// Convenience wrapper over json::parse_file + app_from_json.
StatusOr<AppDescriptor> load_app(const std::string& path);

/// Serializes an application back to the JSON schema above.
json::Value app_to_json(const AppDescriptor& app);

}  // namespace cedr::task
