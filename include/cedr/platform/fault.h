#pragma once
// Deterministic fault injection for the emulated PE pool.
//
// CEDR's worker-thread model dispatches every task onto a heterogeneous PE
// pool; on real silicon those PEs misbehave — FPGA IP cores wedge behind
// their AXI DMA, driverless MMIO polls spin forever, thermal throttling
// stretches service times. This module reproduces those failure modes in
// software so the runtime's fault-tolerance machinery (bounded retry with
// exponential backoff, PE quarantine with probe-based reinstatement, CPU
// fallback for quarantined accelerators) can be exercised and tested
// deterministically.
//
// A FaultPlan is a seeded description of *what goes wrong where*: a default
// per-task fault spec, per-PE overrides keyed by PE name, and scripted
// fail-at-task-N events. A FaultInjector instantiates the plan against a
// concrete PE list and hands out one FaultDecision per task execution. Every
// PE gets its own splitmix-derived PRNG stream, so the decision sequence of
// a PE depends only on (plan seed, PE name, per-PE task ordinal) — never on
// thread interleaving across PEs — and identical seeds reproduce identical
// fault sequences bit-for-bit (the repo-wide 25-seeded-trials discipline).
//
// The FaultPolicy half describes *how the runtime responds*: retry bound,
// backoff curve, quarantine threshold and probe cadence. It lives in the
// same JSON document (`--fault-plan plan.json`) so one file configures an
// entire resilience experiment. See docs/fault_injection.md for the schema.

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cedr/common/rng.h"
#include "cedr/common/status.h"
#include "cedr/json/json.h"
#include "cedr/platform/pe.h"

namespace cedr::platform {

/// What happens to one task execution.
enum class FaultKind : std::uint8_t {
  kNone = 0,        ///< execute normally
  kTransientFail,   ///< the execution errors out (flaky accelerator)
  kLatencySpike,    ///< the execution succeeds but takes extra wall time
  kDeviceHang,      ///< the PE's MMIO device wedges until its watchdog fires
};

/// Stable string name ("none", "fail", "latency", "hang").
std::string_view fault_kind_name(FaultKind kind) noexcept;

/// Per-task fault probabilities and magnitudes for one PE (or the default).
/// Probabilities are evaluated in order fail -> hang -> latency with
/// independent draws, so at most one fault fires per task.
struct FaultSpec {
  double fail_prob = 0.0;     ///< P(transient execution failure)
  double hang_prob = 0.0;     ///< P(device hang / unresponsive PE)
  double latency_prob = 0.0;  ///< P(latency spike)
  double latency_spike_s = 1e-3;  ///< extra service time of a spike
  double hang_s = 10e-3;      ///< CPU-PE hang dwell (devices use a watchdog)

  [[nodiscard]] bool quiet() const noexcept {
    return fail_prob <= 0.0 && hang_prob <= 0.0 && latency_prob <= 0.0;
  }
  [[nodiscard]] json::Value to_json() const;
  static StatusOr<FaultSpec> from_json(const json::Value& value);
};

/// One scripted event: the `task_index`-th task executed on PE `pe` (0-based
/// per-PE ordinal) suffers `kind`. Scripted events override the
/// probabilistic draw for that ordinal, enabling exact regression tests
/// ("fail task #7 on fft0, then recover").
struct ScriptedFault {
  std::string pe;
  std::uint64_t task_index = 0;
  FaultKind kind = FaultKind::kTransientFail;
};

/// How the runtime responds to faults (injected or genuine).
struct FaultPolicy {
  /// Maximum re-executions of one task after its first failure. 0 restores
  /// the old fail-fast behavior.
  std::uint32_t max_retries = 3;
  /// Exponential backoff before re-enqueueing: base * factor^(attempt-1).
  double backoff_base_s = 250e-6;
  double backoff_factor = 2.0;
  /// Consecutive faults on one PE before it is quarantined (0 = never).
  std::uint32_t quarantine_threshold = 3;
  /// How long a quarantined PE sits out before one probe task is allowed.
  double probe_period_s = 20e-3;
  /// Per-task deadline: executions slower than this are counted as deadline
  /// misses, and CPU-PE hang dwells are clipped to it.
  double task_timeout_s = 1.0;

  [[nodiscard]] json::Value to_json() const;
  static StatusOr<FaultPolicy> from_json(const json::Value& value);
};

/// A complete, seeded fault-injection scenario plus the response policy.
struct FaultPlan {
  std::uint64_t seed = 0x5eedfa;
  FaultSpec defaults;                        ///< applies to every PE
  std::map<std::string, FaultSpec> per_pe;   ///< overrides keyed by PE name
  std::vector<ScriptedFault> scripted;
  FaultPolicy policy;

  /// True when the plan injects nothing (policy may still govern genuine
  /// failures — an empty plan does not disable retry/quarantine).
  [[nodiscard]] bool empty() const noexcept;
  /// The spec governing `pe_name` (override or defaults).
  [[nodiscard]] const FaultSpec& spec_for(std::string_view pe_name) const;
  [[nodiscard]] Status validate() const;

  [[nodiscard]] json::Value to_json() const;
  static StatusOr<FaultPlan> from_json(const json::Value& value);
  static StatusOr<FaultPlan> load(const std::string& path);
};

/// The decision for one task execution.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  double duration_s = 0.0;  ///< spike/hang magnitude; 0 for none/fail
};

/// Instantiates a FaultPlan against a concrete PE list and deals decisions.
///
/// Thread safety: each PE's stream is independent state; next(pe_index) for
/// a given index must be called from one thread at a time (in the runtime,
/// each PE is owned by exactly one worker thread), but different PE indices
/// may be driven concurrently without synchronization.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, std::span<const PeDescriptor> pes);

  /// Decision for the next task executed on `pe_index`. Advances that PE's
  /// stream deterministically.
  FaultDecision next(std::size_t pe_index);

  /// Tasks decided so far on `pe_index` (the per-PE ordinal).
  [[nodiscard]] std::uint64_t decided(std::size_t pe_index) const noexcept;

 private:
  struct PeStream {
    FaultSpec spec;
    Rng rng;
    std::uint64_t ordinal = 0;
    /// Scripted overrides for this PE, keyed by per-PE task ordinal.
    std::map<std::uint64_t, FaultKind> scripted;
  };
  std::vector<PeStream> streams_;
};

}  // namespace cedr::platform
