#pragma once
// Profiling-driven cost tables.
//
// CEDR's cost-aware heuristics (EFT/ETF/HEFT_RT) consult per-(kernel, PE)
// execution-time tables that the real framework obtains by profiling
// applications on the target SoC. This module closes that loop for the
// reproduction: it fits cost-model coefficients from the measured task
// service times in an execution trace, so a runtime can be profiled once
// and then rescheduled (or emulated) with tables that reflect *this*
// machine instead of the calibrated presets.
//
// Fit: for each (kernel, PE class) with enough samples, least squares of
//   service_time ~= fixed + per_point * problem_size
// (the per-n·log n term is left to the analytic presets; an affine fit is
// robust at the few sizes a real workload exercises). The least-squares
// implementation is shared with the *online* estimator — see
// cedr/adapt/fit.h and cedr/adapt/online_estimator.h; this module is the
// offline, whole-trace entry point.

#include "cedr/common/status.h"
#include "cedr/platform/cost_model.h"
#include "cedr/platform/platform.h"
#include "cedr/trace/trace.h"

namespace cedr::platform {

/// One fitted pairing, for reporting.
struct ProfiledEntry {
  KernelId kernel = KernelId::kGeneric;
  PeClass cls = PeClass::kCpu;
  std::size_t samples = 0;
  KernelCost fitted;
  double mean_service_s = 0.0;
};

/// Result of profiling a trace against a platform.
struct ProfileResult {
  /// The platform's cost model with every sufficiently-sampled pairing
  /// replaced by its fitted coefficients.
  CostModel costs;
  std::vector<ProfiledEntry> entries;
  std::size_t tasks_used = 0;
  std::size_t tasks_skipped = 0;  ///< unknown kernel/PE or zero duration
};

/// Fits cost tables from `log`, starting from `platform`'s existing model.
/// PE names are resolved to classes through the platform's PE list;
/// pairings with fewer than `min_samples` observations keep their preset
/// coefficients.
StatusOr<ProfileResult> profile_costs(const trace::TraceLog& log,
                                      const PlatformConfig& platform,
                                      std::size_t min_samples = 3);

}  // namespace cedr::platform
