#pragma once
// Identifiers for the schedulable kernel APIs exposed through cedr.h.
//
// Every libCEDR API call carries one of these ids; the runtime uses the id
// to look up (a) which PEs can execute the call and (b) the expected cost
// of each (kernel, PE) pairing from the platform profiling tables.

#include <cstdint>
#include <optional>
#include <string_view>

namespace cedr::platform {

/// Hardware-agnostic kernel identity.
enum class KernelId : std::uint8_t {
  kFft = 0,    ///< forward complex FFT
  kIfft,       ///< inverse complex FFT
  kZip,        ///< element-wise complex vector op
  kMmult,      ///< single-precision GEMM
  kGeneric,    ///< opaque CPU-only computation (DAG glue nodes)
  kCount,      ///< number of kernel ids (not a kernel)
};

inline constexpr std::size_t kNumKernelIds =
    static_cast<std::size_t>(KernelId::kCount);

/// Stable string name ("FFT", "IFFT", "ZIP", "MMULT", "GENERIC").
std::string_view kernel_name(KernelId id) noexcept;

/// Inverse of kernel_name; nullopt for unknown names.
std::optional<KernelId> kernel_from_name(std::string_view name) noexcept;

}  // namespace cedr::platform
