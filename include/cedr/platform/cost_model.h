#pragma once
// Per-(kernel, PE class) execution cost model.
//
// CEDR's EFT/ETF/HEFT_RT heuristics need expected execution times for every
// (task, PE) pairing; the original framework obtains them from offline
// profiling tables. Here the same tables are analytic: cost(kernel, n, pe) =
// fixed + per_point * n + per_nlogn * n*log2(n), plus a data-movement term
// for accelerator classes (DMA over AXI4-Stream on the ZCU102,
// cudaMemcpy over PCIe on the Jetson). Constants are calibrated against the
// magnitudes the paper reports; see platform.cpp for provenance notes.

#include <array>
#include <cstddef>

#include "cedr/common/status.h"
#include "cedr/json/json.h"
#include "cedr/platform/kernel_id.h"
#include "cedr/platform/pe.h"

namespace cedr::platform {

/// Cost coefficients for one (kernel, PE class) pairing.
struct KernelCost {
  double fixed_s = 0.0;      ///< per-invocation overhead (dispatch/setup)
  double per_point_s = 0.0;  ///< marginal seconds per element
  double per_nlogn_s = 0.0;  ///< marginal seconds per n*log2(n)

  /// Evaluates the polynomial at problem size n.
  [[nodiscard]] double eval(std::size_t n) const noexcept;
};

/// Full profiling table for a platform.
class CostModel {
 public:
  CostModel();

  /// Sets the coefficients for one pairing.
  void set(KernelId kernel, PeClass cls, KernelCost cost) noexcept;
  [[nodiscard]] const KernelCost& get(KernelId kernel,
                                      PeClass cls) const noexcept;

  /// Per-byte transfer cost to/from a PE class (0 for CPUs).
  void set_transfer(PeClass cls, double seconds_per_byte,
                    double fixed_s) noexcept;

  /// Expected execution time of `kernel` at problem size `n` on `cls`,
  /// including the data transfer of `bytes` for accelerator classes.
  /// Unsupported pairings return +infinity (schedulers treat them as
  /// unmappable).
  [[nodiscard]] double estimate(KernelId kernel, PeClass cls, std::size_t n,
                                std::size_t bytes) const noexcept;

  /// Serialization for runtime-configuration files.
  [[nodiscard]] json::Value to_json() const;
  static StatusOr<CostModel> from_json(const json::Value& value);

 private:
  std::array<std::array<KernelCost, kNumPeClasses>, kNumKernelIds> table_{};
  std::array<double, kNumPeClasses> transfer_per_byte_{};
  std::array<double, kNumPeClasses> transfer_fixed_{};
};

}  // namespace cedr::platform
