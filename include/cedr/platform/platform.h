#pragma once
// Platform configuration: the resource pool plus its profiling tables.
//
// This is the in-memory analogue of the paper's platform.h + Runtime
// Configuration pair: it enumerates the PEs composed onto the emulated SoC,
// how many physical CPU cores back them, and the cost model the schedulers
// consult. Presets reproduce the paper's two testbeds:
//   - zcu102(): 4 ARM cores @ 1.2 GHz (one reserved for the CEDR runtime),
//     0-8 FFT accelerators @ 300 MHz on fabric, optional MMULT accelerator.
//   - jetson(): 8 ARM cores @ 2.3 GHz (one reserved), Volta GPU @ 1.3 GHz.

#include <cstddef>
#include <string>
#include <vector>

#include "cedr/common/status.h"
#include "cedr/json/json.h"
#include "cedr/platform/cost_model.h"
#include "cedr/platform/pe.h"

namespace cedr::platform {

/// Complete description of an emulated SoC configuration.
struct PlatformConfig {
  std::string name;
  /// Physical CPU cores available to *worker/application* threads. The
  /// paper reserves one core per board for the CEDR main thread; that core
  /// is excluded from this count and tracked separately.
  std::size_t worker_cores = 3;
  /// Extra cores available to application (non-kernel) threads beyond the
  /// worker pool — on the Jetson the OS spreads app threads over all 7
  /// non-runtime cores regardless of how many worker threads exist.
  std::size_t total_app_cores = 3;
  std::vector<PeDescriptor> pes;
  CostModel costs;

  [[nodiscard]] std::size_t count(PeClass cls) const noexcept;
  /// Validates invariants: nonempty unique PE names, nonzero core counts.
  [[nodiscard]] Status validate() const;

  [[nodiscard]] json::Value to_json() const;
  static StatusOr<PlatformConfig> from_json(const json::Value& value);
};

/// ZCU102 preset with `cpus` CPU worker PEs (max 3 usable), `ffts` FFT
/// accelerators (paper uses 0-8) and `mmults` MMULT accelerators.
PlatformConfig zcu102(std::size_t cpus, std::size_t ffts, std::size_t mmults);

/// Jetson AGX Xavier preset with `cpus` CPU worker PEs (max 7 usable) and
/// `gpus` GPU PEs (the board has 1).
PlatformConfig jetson(std::size_t cpus, std::size_t gpus);

/// big.LITTLE exploration platform (the paper's §VI future-work proposal):
/// `big_cpus` heavyweight cores plus `little_cpus` lightweight cores at
/// 45 % throughput, plus FFT accelerators whose management threads the
/// LITTLE cores are meant to absorb.
PlatformConfig biglittle(std::size_t big_cpus, std::size_t little_cpus,
                         std::size_t ffts);

/// Host platform for functional (real-thread) execution: `cpus` CPU PEs plus
/// optional emulated FFT/MMULT devices, all backed by this machine's cores.
PlatformConfig host(std::size_t cpus, std::size_t ffts = 0,
                    std::size_t mmults = 0);

}  // namespace cedr::platform
