#pragma once
// Address-mapped MMIO bus.
//
// On the real ZCU102, libCEDR's platform.h "provides global information
// about the platform in use such as base addresses for accelerators' AXI4
// interfaces to enable driverless memory-mapped I/O control" (paper §II-C).
// MmioBus is that address map in emulated form: devices are registered at
// base addresses and accessed by absolute address, exactly as a driverless
// userspace runtime would after mmap()ing /dev/mem. Each device occupies a
// fixed-size window; register offsets within the window follow DeviceReg.
//
// The bus complements direct MmioDevice handles: the runtime's workers hold
// device pointers (fast path), while the bus supports address-oriented
// code — platform bring-up tools, address-map validation, and tests that
// exercise decoding errors (unmapped or misaligned accesses).

#include <cstdint>
#include <map>
#include <memory>

#include "cedr/common/status.h"
#include "cedr/platform/mmio_device.h"

namespace cedr::platform {

/// Bytes of address space each device window occupies.
inline constexpr std::uint64_t kDeviceWindowBytes = 0x1000;  // 4 KiB, AXI-lite
/// Word size of the register file (addresses must be word aligned).
inline constexpr std::uint64_t kRegisterBytes = 4;

/// An address decoder over a set of emulated devices.
class MmioBus {
 public:
  /// Maps `device` at `base`. Fails if the 4 KiB window overlaps an
  /// existing mapping or the base is not window-aligned. The bus takes
  /// ownership.
  Status map(std::uint64_t base, std::unique_ptr<MmioDevice> device);

  /// Device lookup by base address (nullptr when unmapped).
  [[nodiscard]] MmioDevice* at(std::uint64_t base) const noexcept;

  /// Register access by absolute address: base + word offset of DeviceReg.
  Status write_word(std::uint64_t address, std::uint32_t value);
  StatusOr<std::uint32_t> read_word(std::uint64_t address);

  /// Number of mapped devices.
  [[nodiscard]] std::size_t size() const noexcept { return devices_.size(); }

  /// Base addresses in ascending order (the platform.h address table).
  [[nodiscard]] std::vector<std::uint64_t> bases() const;

 private:
  /// Resolves an absolute address to (device, register). Errors on
  /// unmapped windows, misalignment, or out-of-window register offsets.
  StatusOr<std::pair<MmioDevice*, DeviceReg>> decode(std::uint64_t address);

  std::map<std::uint64_t, std::unique_ptr<MmioDevice>> devices_;
};

}  // namespace cedr::platform
