#pragma once
// Processing-element descriptions.
//
// A CEDR platform is a pool of processing elements: general-purpose CPU
// cores plus fixed-function accelerators (FPGA FFT/MMULT IP on the ZCU102,
// CUDA-dispatched FFT/ZIP on the Jetson's GPU). Each PE is paired with a
// worker thread; accelerator workers run *on* a CPU core and coordinate
// configuration and data transfer for their device (paper §II-A).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cedr/platform/kernel_id.h"

namespace cedr::platform {

/// Broad class of a processing element; cost tables key on this.
enum class PeClass : std::uint8_t {
  kCpu = 0,
  kFftAccel,
  kMmultAccel,
  kGpu,
  kCount,
};

inline constexpr std::size_t kNumPeClasses =
    static_cast<std::size_t>(PeClass::kCount);

/// Stable string name ("cpu", "fft", "mmult", "gpu").
std::string_view pe_class_name(PeClass cls) noexcept;

/// Inverse of pe_class_name; nullopt for unknown names.
std::optional<PeClass> pe_class_from_name(std::string_view name) noexcept;

/// One processing element in the resource pool.
struct PeDescriptor {
  std::string name;          ///< unique, e.g. "cpu1", "fft0"
  PeClass cls = PeClass::kCpu;
  double clock_hz = 1.0e9;   ///< nominal clock, informs cost scaling
  /// Per-PE throughput relative to its class's cost table (1.0 = table
  /// speed). Enables heterogeneous CPU pools — the paper's future-work
  /// big.LITTLE proposal models LITTLE cores as speed_factor < 1.
  double speed_factor = 1.0;
  /// Which kernels this PE can execute. CPU cores execute everything; the
  /// FFT accelerator executes kFft/kIfft; MMULT executes kMmult; the GPU
  /// executes kFft/kIfft/kZip (the CUDA kernels the paper implements).
  [[nodiscard]] bool supports(KernelId kernel) const noexcept;
};

/// True when `cls` can execute `kernel` (the support matrix above).
bool pe_class_supports(PeClass cls, KernelId kernel) noexcept;

}  // namespace cedr::platform
