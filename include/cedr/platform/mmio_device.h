#pragma once
// Emulated memory-mapped accelerator devices.
//
// On the real ZCU102, libCEDR modules control FPGA accelerators through
// driverless MMIO: the worker thread programs AXI4 registers, kicks a DMA
// transfer, then polls a status register until the IP core finishes. This
// module reproduces that contract in software so the accelerator code path
// (register programming -> buffer transfer -> busy polling -> readback) is
// exercised end-to-end without the fabric. Each device computes with the
// same kernels/ math as the CPU path, so results are bit-identical and
// functional tests can compare PE variants directly.
//
// The register map below is modeled on the Xilinx AXI DMA + FFT IP flow the
// paper describes (up-to-2048-point FFT IP fed by DMA over AXI4-Stream).

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "cedr/common/math_util.h"
#include "cedr/common/status.h"

namespace cedr::platform {

/// Register offsets shared by all emulated devices (word addressed).
enum class DeviceReg : std::uint32_t {
  kControl = 0,   ///< write kStart to launch the configured operation
  kStatus = 1,    ///< kIdle / kBusy / kDone / kError
  kSize = 2,      ///< problem size (elements / matrix dim)
  kMode = 3,      ///< kernel-specific mode (FFT direction, ZIP op, ...)
  kSizeAux = 4,   ///< second dimension where needed (MMULT k)
  kSizeAux2 = 5,  ///< third dimension where needed (MMULT n)
};

inline constexpr std::uint32_t kCmdStart = 1;
inline constexpr std::uint32_t kStatusIdle = 0;
inline constexpr std::uint32_t kStatusBusy = 1;
inline constexpr std::uint32_t kStatusDone = 2;
inline constexpr std::uint32_t kStatusError = 3;

/// Base class: register file + DMA buffers + polling protocol.
///
/// Protocol (mirrors the driverless MMIO flow):
///   1. dma_write_a / dma_write_b  — stream operands into device BRAM
///   2. write_reg(kSize/kMode/...) — configure the operation
///   3. write_reg(kControl, kCmdStart)
///   4. read_reg(kStatus) until kStatusDone (each poll advances the
///      device's emulated completion countdown)
///   5. dma_read — stream the result back
///
/// Thread safety: one in-flight operation at a time (a device is owned by
/// exactly one worker thread in the runtime); the internal mutex makes
/// misuse detectable rather than undefined.
class MmioDevice {
 public:
  virtual ~MmioDevice() = default;

  /// Streams bytes into operand buffer A (B likewise). Fails while busy.
  Status dma_write_a(std::span<const std::uint8_t> bytes);
  Status dma_write_b(std::span<const std::uint8_t> bytes);
  /// Streams the result buffer back. Fails unless status is kStatusDone.
  Status dma_read(std::span<std::uint8_t> bytes);

  /// Writes a configuration/control register.
  Status write_reg(DeviceReg reg, std::uint32_t value);
  /// Reads a register. Reading kStatus while busy decrements the emulated
  /// completion countdown, so a polling loop terminates deterministically.
  std::uint32_t read_reg(DeviceReg reg);

  /// Device type name for traces ("fft", "mmult", "zip").
  [[nodiscard]] virtual std::string_view type_name() const noexcept = 0;

  /// Emulated polls-until-done for a freshly started op of size n.
  [[nodiscard]] virtual std::uint32_t latency_polls(std::uint32_t n) const noexcept;

  /// Fault injection: wedges the device. The next started operation stays
  /// kStatusBusy for `watchdog_polls` status reads, then the emulated AXI
  /// watchdog fires and the status register reads kStatusError — exactly
  /// how a hung IP core surfaces to the polling worker on hardware.
  void inject_hang(std::uint32_t watchdog_polls = 4096);

  /// Clears any wedged/errored state back to kStatusIdle (the worker-side
  /// recovery step after a failed operation, standing in for an IP reset
  /// through the control register).
  void reset();

 protected:
  /// Runs the actual computation; called once when kCmdStart is written.
  /// Reads operands_a/b_, writes result_. Returns an error to surface
  /// kStatusError to the polling worker.
  virtual Status execute() = 0;

  std::vector<std::uint8_t> operand_a_;
  std::vector<std::uint8_t> operand_b_;
  std::vector<std::uint8_t> result_;
  std::uint32_t reg_size_ = 0;
  std::uint32_t reg_mode_ = 0;
  std::uint32_t reg_size_aux_ = 0;
  std::uint32_t reg_size_aux2_ = 0;

 private:
  std::mutex mutex_;
  std::uint32_t status_ = kStatusIdle;
  std::uint32_t polls_remaining_ = 0;
  bool hang_armed_ = false;
  std::uint32_t hang_polls_remaining_ = 0;
};

/// FFT/IFFT device (Xilinx FFT IP analogue). Operand A holds cfloat[size];
/// kMode 0 = forward, 1 = inverse. Size must be a power of two <= 2048,
/// matching the paper's IP configuration.
class FftDevice final : public MmioDevice {
 public:
  [[nodiscard]] std::string_view type_name() const noexcept override {
    return "fft";
  }

 protected:
  Status execute() override;
};

/// ZIP device. Operands A and B hold cfloat[size]; kMode selects the
/// element-wise op (kernels::ZipOp numeric value).
class ZipDevice final : public MmioDevice {
 public:
  [[nodiscard]] std::string_view type_name() const noexcept override {
    return "zip";
  }

 protected:
  Status execute() override;
};

/// MMULT device. A is float[m*k], B is float[k*n]; kSize=m, kSizeAux=k,
/// kSizeAux2=n.
class MmultDevice final : public MmioDevice {
 public:
  [[nodiscard]] std::string_view type_name() const noexcept override {
    return "mmult";
  }

 protected:
  Status execute() override;
};

}  // namespace cedr::platform
