#pragma once
// libCEDR module implementations: per-PE-class task functions.
//
// This is the "libCEDR Modules" layer of Fig. 3: for every high-level API
// there is, at minimum, a standard C/C++ implementation (the libcedr.a
// path), and per-accelerator implementations that drive the platform's
// emulated MMIO devices (the libcedr-rt.so path). The factories below build
// the full per-PE-class implementation array for one API invocation over
// caller-owned buffers; both the API layer (api.cpp) and DAG-based
// application builders (apps/) use them, so CPU and accelerator execution
// paths are bit-identical across programming models.
//
// Buffer lifetime: the returned TaskFns capture raw pointers; the caller
// must keep the buffers alive until the task completes (for blocking APIs
// that is automatic; for non-blocking APIs it is the user contract).

#include <array>

#include "cedr/common/math_util.h"
#include "cedr/kernels/zip.h"
#include "cedr/task/task.h"

namespace cedr::api {

using ImplArray = std::array<task::TaskFn, platform::kNumPeClasses>;

/// FFT/IFFT of `n` points from `in` to `out` (may alias). CPU impl uses
/// kernels::fft; FFT-accelerator and GPU impls drive ctx.device through the
/// MMIO protocol (DMA in -> configure -> start -> poll -> DMA out).
ImplArray make_fft_impls(const cfloat* in, cfloat* out, std::size_t n,
                         bool inverse);

/// Element-wise ZIP of `n` points.
ImplArray make_zip_impls(const cfloat* a, const cfloat* b, cfloat* out,
                         std::size_t n, kernels::ZipOp op);

/// GEMM C(m x n) = A(m x k) * B(k x n).
ImplArray make_mmult_impls(const float* a, const float* b, float* c,
                           std::size_t m, std::size_t k, std::size_t n);

/// Opaque CPU-only work: runs `fn` (may be empty) and, when `fn` is empty,
/// spins for roughly `work_units` nanoseconds of reference-core time so DAG
/// glue nodes have realistic service times in functional runs.
ImplArray make_generic_impls(std::function<void()> fn,
                             std::size_t work_units = 0);

}  // namespace cedr::api
