#pragma once
// Daemon half of the shared-memory lane (docs/ipc.md, "Shared-memory
// lane").
//
// ShmServer owns one session per client connection: the mapped segment,
// the two doorbell eventfds and the per-session submission state. It plugs
// into the existing IPC front-end rather than replacing it:
//
//   * the poll(2) event loop stays the control plane — it registers each
//     session's submission doorbell in its poll set, and every round asks
//     claim_drains() which sessions have ring work and hands those to the
//     same worker pool that runs slow socket verbs;
//   * drain() (worker side) consumes submission records in bounded batches,
//     bounded additionally by completion-ring credit: a record is only
//     consumed when its completion slot is free, so a client that stops
//     reading completions back-pressures into its own submission ring, not
//     into daemon memory. A batch is processed in three phases
//     (docs/runtime_lifecycle.md): classify every record (documents compile
//     through the process-wide apps::TemplateCache), submit all valid DAGs
//     to the runtime as ONE batch (one lifecycle-lock hold, one ready-queue
//     push), then publish all completions with one ring cursor store and
//     one doorbell;
//   * admission is the same `admit` predicate the socket lane uses, so
//     `BUSY` semantics and `max_inflight_apps` apply identically to both
//     lanes;
//   * a record failing its CRC poisons the session (latch in the shared
//     header + `shm.crc_rejected_total`): the daemon stops consuming from
//     a desynced ring instead of guessing at record boundaries;
//   * close_session() reaps the segment when the control connection dies —
//     a SIGKILLed client's session is unmapped as soon as the event loop
//     sees EOF, even mid-drain (the draining worker holds the session
//     alive via shared_ptr and observes the `closed` flag).

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cedr/common/status.h"
#include "cedr/json/json.h"
#include "cedr/runtime/runtime.h"
#include "cedr/shm/segment.h"

namespace cedr::shm {

struct ShmServerOptions {
  SegmentOptions segment;            ///< geometry for every new session
  std::size_t max_sessions = 64;     ///< beyond it SHMOPEN is refused
  std::uint32_t busy_retry_ms = 50;  ///< retry hint in kBusy completions
  std::size_t drain_batch = 256;     ///< records consumed per drain job
};

class ShmServer {
 public:
  /// `admit` is the shared admission predicate (the socket lane's
  /// max_inflight_apps check); a false return turns a submission record
  /// into a kBusy completion.
  ShmServer(rt::Runtime& runtime, ShmServerOptions options,
            std::function<bool()> admit);
  ShmServer(const ShmServer&) = delete;
  ShmServer& operator=(const ShmServer&) = delete;
  ~ShmServer();

  /// What SHMOPEN hands back: the reply line plus the three descriptors to
  /// attach to it (segment, submission doorbell, completion doorbell).
  /// The fds stay owned by the session; they are valid until
  /// close_session(id).
  struct OpenInfo {
    std::vector<int> fds;
    std::string reply;  ///< "OK sub_slots=... cpl_slots=... arena=...\n"
  };

  /// Creates a session keyed by the control-connection id.
  StatusOr<OpenInfo> open_session(std::uint64_t id);
  /// Reaps a session: unmaps the segment, closes the doorbells. Safe while
  /// a drain job is running (it holds a shared_ptr and checks `closed`).
  void close_session(std::uint64_t id);
  void close_all();
  [[nodiscard]] std::size_t session_count();

  /// (session id, submission doorbell fd) pairs for the event loop's poll
  /// set.
  void poll_fds(std::vector<std::pair<std::uint64_t, int>>& out);
  /// Event loop saw POLLIN on a session's submission doorbell: clear the
  /// eventfd and count the wake. Draining is dispatched via claim_drains().
  void doorbell_rang(std::uint64_t id);
  /// Appends the ids of sessions with pending ring work whose drain flag
  /// was claimed by this call; the caller dispatches each to the worker
  /// pool (exactly one drain job per session is in flight at a time).
  /// Also refreshes the shm.sub_ring_depth gauge.
  void claim_drains(std::vector<std::uint64_t>& out);
  /// Worker entry: drains up to drain_batch records, posts completions,
  /// clears the session's drain flag. Returns true when ring work remains
  /// (caller should wake the event loop so claim_drains() runs again).
  bool drain(std::uint64_t id);

 private:
  struct Session {
    std::uint64_t id = 0;
    Segment segment;
    int sub_doorbell_fd = -1;
    int cpl_doorbell_fd = -1;
    std::atomic<bool> drain_inflight{false};
    std::atomic<bool> closed{false};
    ~Session();
  };

  std::shared_ptr<Session> find(std::uint64_t id);
  /// Classifies one submission record. Errors, NOPs and busy rejections
  /// fill the (zeroed) completion slot immediately and return true; a valid
  /// SUBMITDAG appends a compiled instance to `submissions` and returns
  /// false — its slot is filled after the whole batch is submitted.
  /// Document compilation goes through the process-wide
  /// apps::TemplateCache, shared with the socket lane.
  bool process_record(Session& session, const SubRecord& rec, CplRecord& cpl,
                      std::vector<rt::DagSubmission>& submissions);
  void ring_cpl_doorbell(Session& session);

  rt::Runtime& runtime_;
  ShmServerOptions options_;
  std::function<bool()> admit_;
  std::mutex mutex_;  ///< guards sessions_
  std::unordered_map<std::uint64_t, std::shared_ptr<Session>> sessions_;
};

}  // namespace cedr::shm
