#pragma once
// Segment lifecycle for the shared-memory lane (layout.h).
//
// The daemon creates one anonymous memory-backed segment per client
// (memfd_create, falling back to an unlinked shm_open file), initializes
// the CRC-guarded header, and hands the file descriptor to the client over
// the control socket (SCM_RIGHTS, see fdpass.h). The client attaches by
// mapping the fd and validating magic, version, header CRC and offset
// arithmetic — a torn or mismatched header is rejected at attach, never
// indexed.

#include <cstdint>
#include <string>

#include "cedr/common/status.h"
#include "cedr/shm/layout.h"
#include "cedr/shm/ring.h"

namespace cedr::shm {

/// Segment geometry knobs (daemon side; clamped server policy).
struct SegmentOptions {
  std::uint32_t sub_slots = 1024;        ///< power of two
  std::uint32_t cpl_slots = 1024;        ///< power of two
  std::uint32_t arena_bytes = 1u << 20;  ///< rounded up to 64
};

/// A mapped segment, owned end (unmaps and closes on destruction). Movable
/// only.
class Segment {
 public:
  Segment() = default;
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;
  Segment(Segment&& other) noexcept { *this = std::move(other); }
  Segment& operator=(Segment&& other) noexcept;
  ~Segment();

  /// Daemon side: create, size and map a fresh anonymous segment and
  /// initialize its header.
  static StatusOr<Segment> create(const SegmentOptions& options);

  /// Client side: map the received fd and validate the header. Takes
  /// ownership of `fd` (closed on failure too).
  static StatusOr<Segment> attach(int fd);

  [[nodiscard]] bool valid() const noexcept { return base_ != nullptr; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] SegmentHeader* header() const noexcept {
    return reinterpret_cast<SegmentHeader*>(base_);
  }
  [[nodiscard]] char* arena() const noexcept {
    return static_cast<char*>(base_) + header()->layout.arena_off;
  }
  [[nodiscard]] std::uint32_t arena_bytes() const noexcept {
    return header()->layout.arena_bytes;
  }
  [[nodiscard]] std::size_t total_bytes() const noexcept { return bytes_; }

  /// Ring views over the mapped cursors and slot arrays. Each side uses
  /// only its role's half of each ring (docs/ipc.md).
  [[nodiscard]] SpscRing<SubRecord> sub_ring() const noexcept;
  [[nodiscard]] SpscRing<CplRecord> cpl_ring() const noexcept;

 private:
  void* base_ = nullptr;
  std::size_t bytes_ = 0;
  int fd_ = -1;
};

/// Validates a header against the compiled-in layout (magic, version,
/// CRC, power-of-two slot counts, slot sizes, offset arithmetic within
/// `file_bytes`). Shared by attach() and the reattach tests.
Status validate_header(const SegmentHeader& header, std::size_t file_bytes);

}  // namespace cedr::shm
