#pragma once
// SCM_RIGHTS file-descriptor passing over the Unix-domain control socket.
//
// The SHMOPEN handshake (docs/ipc.md) delivers three descriptors to the
// client — the segment fd and the two doorbell eventfds — as ancillary data
// attached to the text reply. These helpers wrap the sendmsg/recvmsg
// plumbing; the descriptors ride with whatever data bytes the call carries,
// so the receiver must collect ancillary fds on every read until its reply
// line is complete.

#include <cstddef>
#include <vector>

#include <sys/types.h>

namespace cedr::shm {

inline constexpr std::size_t kMaxPassedFds = 8;

/// sendmsg(`data`, `len`) with `fds` attached as one SCM_RIGHTS control
/// block. Returns bytes sent (>=1 implies the fds were delivered) or -1
/// with errno set. The caller keeps ownership of its fd copies.
ssize_t send_with_fds(int sock, const void* data, std::size_t len,
                      const std::vector<int>& fds);

/// recvmsg into `buf`; any SCM_RIGHTS descriptors that arrived with these
/// bytes are appended to `fds_out` (received fds are owned by the caller).
/// Returns bytes read, 0 on EOF, or -1 with errno set.
ssize_t recv_with_fds(int sock, void* buf, std::size_t len,
                      std::vector<int>& fds_out);

}  // namespace cedr::shm
