#pragma once
// Client half of the shared-memory lane (docs/ipc.md, "Shared-memory
// lane").
//
// ShmClient opens its own control-socket connection, performs the SHMOPEN
// handshake (the daemon replies with the segment fd and the two doorbell
// eventfds as SCM_RIGHTS ancillary data), maps and validates the segment,
// and from then on submits through the SPSC submission ring without a
// syscall per record — the doorbell write happens only when the daemon has
// armed it before sleeping. Completions come back over the completion ring
// the same way.
//
// The control connection stays open for the session's lifetime: the daemon
// reaps the segment when it sees EOF on it, which is what keeps a
// SIGKILLed client from leaking daemon-side state.
//
// Failure contract: connect() reports Unavailable when the daemon lacks or
// refuses the lane (old daemon, --no-shm, segment exhaustion) so callers
// like `cedr_submit --transport auto` can fall back to the socket lane.
// A poisoned session (record CRC failure observed by the daemon) surfaces
// as Aborted from every later submit.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cedr/common/status.h"
#include "cedr/shm/layout.h"
#include "cedr/shm/segment.h"

namespace cedr::shm {

/// Connect behaviour for the control-socket handshake (mirrors
/// ipc::IpcClientConfig).
struct ShmClientConfig {
  double connect_timeout_s = 0.0;  ///< retry window for the initial connect
  std::uint32_t backoff_initial_ms = 20;
  std::uint32_t backoff_max_ms = 250;
};

/// One decoded completion-ring record.
struct Completion {
  std::uint64_t seq = 0;
  CplStatus status = CplStatus::kError;
  std::uint64_t value = 0;  ///< instance id (kOk) or retry hint ms (kBusy)
  std::string msg;          ///< reason text (kError)
};

class ShmClient {
 public:
  explicit ShmClient(std::string socket_path, ShmClientConfig config = {})
      : socket_path_(std::move(socket_path)), config_(config) {}
  ShmClient(const ShmClient&) = delete;
  ShmClient& operator=(const ShmClient&) = delete;
  ~ShmClient();

  /// Connects the control socket, performs SHMOPEN, attaches the segment.
  /// Unavailable when the daemon does not offer the lane.
  Status connect();
  [[nodiscard]] bool connected() const noexcept { return segment_.valid(); }

  /// Copies `payload` into the argument arena (bump allocation, never
  /// freed) and returns its offset, for repeated submit_staged() calls that
  /// share one payload. ResourceExhausted when the arena is out of space.
  StatusOr<std::uint32_t> stage(std::string_view payload);

  /// Submits a SUBMITDAG record referencing a stage()d payload. Returns
  /// the record's sequence number. Blocks (doorbell wait) while the
  /// submission ring is full; `timeout_ms` < 0 means wait forever.
  StatusOr<std::uint64_t> submit_staged(std::uint32_t arg_off,
                                        std::uint32_t arg_len,
                                        int timeout_ms = -1);

  /// Submits a DAG JSON document: inline in the record when it fits,
  /// otherwise staged into the arena (memoized, so resubmitting the same
  /// document does not grow the arena).
  StatusOr<std::uint64_t> submit_dag_json(std::string_view json_doc,
                                          int timeout_ms = -1);

  /// Round-trip-only record; completes with the echoed sequence number.
  StatusOr<std::uint64_t> nop(int timeout_ms = -1);

  /// Drains currently-available completions without blocking. Returns the
  /// number appended to `out`.
  std::size_t poll_completions(std::vector<Completion>& out);

  /// Blocks until the completion for `seq` arrives (earlier completions
  /// are consumed and counted on the way). `timeout_ms` < 0 waits forever.
  StatusOr<Completion> wait_completion(std::uint64_t seq, int timeout_ms = -1);

  /// Blocks until every submitted record has completed.
  Status wait_all(int timeout_ms = -1);

  [[nodiscard]] std::uint64_t submitted() const noexcept { return submitted_; }
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t busy_completions() const noexcept {
    return busy_;
  }
  [[nodiscard]] std::uint64_t full_ring_waits() const noexcept {
    return full_ring_waits_;
  }

  /// Negotiated geometry (valid after connect()).
  [[nodiscard]] const SegmentHeader* header() const noexcept {
    return segment_.valid() ? segment_.header() : nullptr;
  }

 private:
  Status connect_control_socket();
  /// Blocks until the submission ring has a free slot (completion-doorbell
  /// wait: the daemon frees submission slots as it posts completions).
  Status wait_for_sub_slot(int timeout_ms);
  /// Fills, CRC-stamps and publishes one record; rings the submission
  /// doorbell if the daemon armed it.
  StatusOr<std::uint64_t> push_record(Opcode opcode, std::uint16_t flags,
                                      std::uint32_t arg_off,
                                      std::uint32_t arg_len,
                                      std::string_view inline_payload,
                                      int timeout_ms);
  /// Arms the completion doorbell and poll(2)s it. Ok = woken or data
  /// already present; Unavailable on timeout.
  Status wait_on_cpl_doorbell(int timeout_ms);
  bool consume_one(Completion& out);

  std::string socket_path_;
  ShmClientConfig config_;
  int control_fd_ = -1;
  int sub_doorbell_fd_ = -1;
  int cpl_doorbell_fd_ = -1;
  Segment segment_;
  SpscRing<SubRecord> sub_ring_;
  SpscRing<CplRecord> cpl_ring_;
  std::uint32_t arena_used_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t busy_ = 0;
  std::uint64_t full_ring_waits_ = 0;
  /// submit_dag_json() memo: last staged document and its arena offset.
  std::string staged_doc_;
  std::uint32_t staged_off_ = 0;
};

}  // namespace cedr::shm
