#pragma once
// cedr::shm — the shared-memory binary submission data plane (docs/ipc.md,
// "Shared-memory lane").
//
// This header is the layout contract between the daemon and its clients:
// one mapped segment per client holding a fixed header, an SPSC submission
// ring (client -> daemon), an SPSC completion ring (daemon -> client) and a
// client-managed argument arena for SUBMITDAG payloads. Everything is
// position-independent (offsets, not pointers), fixed-size and versioned,
// so both sides can map the same bytes at different addresses and a
// mismatched peer is rejected at attach instead of corrupting memory.
//
// Concurrency contract (the whole point of the lane):
//   * each ring is strictly single-producer/single-consumer. Cursors are
//     monotonically increasing uint64 slot counters on their own cache
//     lines; the slot index is `cursor & (slots - 1)` (slot counts are
//     powers of two). The producer writes the record, then release-stores
//     the tail; the consumer acquire-loads the tail before reading the
//     record — no locks, no syscalls on the hot path.
//   * doorbells are eventfds passed over the control socket at SHMOPEN.
//     They exist only to wake a sleeping peer: each side arms its
//     `*_doorbell_armed` flag before sleeping and the other side issues the
//     one write(2) only when it observes the flag set, so a busy ring runs
//     doorbell-free.
//   * every record carries a CRC-32 over its payload. The rings are torn-
//     write-safe between live peers by the release/acquire ordering alone;
//     the CRC is the reattach/corruption guard — a record that fails it
//     poisons the session (the daemon stops consuming and the client falls
//     back to the socket lane) rather than desyncing silently.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "cedr/obs/segment.h"  // obs::crc32

namespace cedr::shm {

/// "CEDRSHM1" little-endian.
inline constexpr std::uint64_t kMagic = 0x314D485352444543ull;
inline constexpr std::uint32_t kVersion = 1;

/// Submission opcodes.
enum class Opcode : std::uint16_t {
  kNop = 1,        ///< round-trip only; completion echoes the sequence
  kSubmitDag = 2,  ///< payload is an executable-DAG JSON document
};

/// SubRecord::flags bits: where the payload lives.
inline constexpr std::uint16_t kArgInArena = 1u << 0;
inline constexpr std::uint16_t kArgInline = 1u << 1;

/// Completion statuses.
enum class CplStatus : std::uint16_t {
  kOk = 0,
  kBusy = 1,   ///< admission refused; value carries the retry hint (ms)
  kError = 2,  ///< msg carries a truncated reason
};

/// One submission-ring slot (client -> daemon). 128 bytes: two cache
/// lines, large enough to carry a short path or name inline without
/// touching the arena.
struct alignas(64) SubRecord {
  std::uint32_t crc;       ///< crc32 over bytes [4, 32 + inline payload)
  std::uint16_t opcode;    ///< Opcode
  std::uint16_t flags;     ///< kArgInArena | kArgInline
  std::uint64_t seq;       ///< client-assigned, echoed in the completion
  std::uint32_t arg_off;   ///< arena offset (kArgInArena)
  std::uint32_t arg_len;   ///< payload bytes (either location)
  std::uint64_t reserved;  ///< zero; covered by the CRC
  char inline_arg[96];     ///< payload when kArgInline (arg_len <= 96)
};
static_assert(sizeof(SubRecord) == 128);
inline constexpr std::uint32_t kSubInlineBytes = sizeof(SubRecord::inline_arg);

/// One completion-ring slot (daemon -> client). One cache line.
struct alignas(64) CplRecord {
  std::uint32_t crc;      ///< crc32 over bytes [4, 64)
  std::uint16_t status;   ///< CplStatus
  std::uint16_t msg_len;  ///< used bytes of `msg`
  std::uint64_t seq;      ///< echoed SubRecord::seq
  std::uint64_t value;    ///< instance id (kOk) or retry hint ms (kBusy)
  char msg[40];           ///< truncated error text (kError)
};
static_assert(sizeof(CplRecord) == 64);
inline constexpr std::uint32_t kCplMsgBytes = sizeof(CplRecord::msg);

/// The layout-defining block of the header, covered by `header_crc` — the
/// CRC-guarded half of the SHMOPEN handshake. A client whose record sizes
/// or offsets disagree (version skew, torn/corrupt header on reattach)
/// fails validation instead of indexing garbage.
struct SegmentLayout {
  std::uint32_t sub_slots;       ///< submission-ring capacity (power of two)
  std::uint32_t cpl_slots;       ///< completion-ring capacity (power of two)
  std::uint32_t sub_slot_bytes;  ///< sizeof(SubRecord) of the creator
  std::uint32_t cpl_slot_bytes;  ///< sizeof(CplRecord) of the creator
  std::uint32_t arena_bytes;
  std::uint32_t reserved = 0;
  std::uint64_t sub_ring_off;
  std::uint64_t cpl_ring_off;
  std::uint64_t arena_off;
  std::uint64_t total_bytes;
  std::uint64_t daemon_pid;
};

/// Segment header. The atomics are shared between two *processes*:
/// std::atomic over the mapped bytes is valid because the platform lock-free
/// (address-free) guarantee is asserted below.
struct SegmentHeader {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t header_crc;  ///< crc32 over `layout`
  SegmentLayout layout;
  std::atomic<std::uint64_t> client_pid;  ///< written by the client on attach

  /// Ring cursors, one cache line each so producer and consumer never
  /// false-share. `*_head` = consumer cursor, `*_tail` = producer cursor.
  alignas(64) std::atomic<std::uint64_t> sub_head;
  alignas(64) std::atomic<std::uint64_t> sub_tail;
  alignas(64) std::atomic<std::uint64_t> cpl_head;
  alignas(64) std::atomic<std::uint64_t> cpl_tail;

  /// Doorbell arming flags plus the poison latch (set by the daemon when a
  /// record fails its CRC; the session is dead from then on).
  alignas(64) std::atomic<std::uint32_t> sub_doorbell_armed;
  std::atomic<std::uint32_t> poisoned;
  alignas(64) std::atomic<std::uint32_t> cpl_doorbell_armed;
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shared-memory cursors require address-free atomics");
static_assert(std::atomic<std::uint32_t>::is_always_lock_free,
              "shared-memory flags require address-free atomics");

/// Header region size; rings start at this offset.
inline constexpr std::size_t kHeaderBytes =
    (sizeof(SegmentHeader) + 511) & ~std::size_t{511};

/// CRC over a submission record: the fixed fields after `crc` plus the used
/// inline payload. Arena payloads are not covered here (the arena is client
/// memory until the record is consumed); corruption there surfaces as a
/// parse error completion, not a poisoned ring.
inline std::uint32_t sub_record_crc(const SubRecord& rec) {
  const std::size_t inline_used =
      (rec.flags & kArgInline) != 0 && rec.arg_len <= kSubInlineBytes
          ? rec.arg_len
          : 0;
  return obs::crc32(reinterpret_cast<const char*>(&rec) + sizeof(rec.crc),
                    offsetof(SubRecord, inline_arg) - sizeof(rec.crc) +
                        inline_used);
}

/// CRC over a completion record: everything after `crc` (records are
/// zero-initialized by the producer, so the tail of `msg` is stable).
inline std::uint32_t cpl_record_crc(const CplRecord& rec) {
  return obs::crc32(reinterpret_cast<const char*>(&rec) + sizeof(rec.crc),
                    sizeof(CplRecord) - sizeof(rec.crc));
}

inline std::uint32_t layout_crc(const SegmentLayout& layout) {
  return obs::crc32(&layout, sizeof(layout));
}

[[nodiscard]] inline bool is_power_of_two(std::uint64_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

}  // namespace cedr::shm
