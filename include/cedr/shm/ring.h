#pragma once
// SPSC ring view over a mapped segment (layout.h).
//
// SpscRing does not own memory: it is a typed window onto one ring's
// cursor pair and slot array inside a shm::Segment, constructed
// independently by the producer process and the consumer process over the
// same bytes. The protocol is the classic two-cursor SPSC queue:
//
//   producer:  slot = acquire();        // nullptr when full
//              *slot = record;          // plain stores, slot is exclusive
//              publish();               // release-store tail+1
//   consumer:  rec = front();           // acquire-load tail; nullptr empty
//              ... read *rec ...
//              release();               // release-store head+1
//
// The release/acquire pair on `tail` makes the record contents visible
// before the slot is observable; the release on `head` returns the slot to
// the producer only after the consumer is done reading it. Cursors grow
// monotonically (no wrap handling beyond the power-of-two mask), so
// `tail - head` is always the exact occupancy.

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace cedr::shm {

template <typename Record>
class SpscRing {
 public:
  SpscRing() = default;
  /// `slots` must be a power of two; `base` points at slot 0.
  SpscRing(std::atomic<std::uint64_t>* head, std::atomic<std::uint64_t>* tail,
           void* base, std::uint32_t slots)
      : head_(head),
        tail_(tail),
        base_(static_cast<Record*>(base)),
        mask_(slots - 1),
        slots_(slots) {}

  [[nodiscard]] std::uint32_t capacity() const noexcept { return slots_; }

  /// Occupied slots (approximate from the opposite side's point of view,
  /// exact from the calling side's).
  [[nodiscard]] std::uint64_t size() const noexcept {
    return tail_->load(std::memory_order_acquire) -
           head_->load(std::memory_order_acquire);
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  // --- producer side -------------------------------------------------------

  /// Next free slot for writing, or nullptr when the ring is full. The slot
  /// stays exclusively the producer's until publish().
  [[nodiscard]] Record* acquire() noexcept {
    const std::uint64_t tail = tail_->load(std::memory_order_relaxed);
    if (tail - head_->load(std::memory_order_acquire) >= slots_) {
      return nullptr;  // full: consumer has not released the oldest slot
    }
    return &base_[tail & mask_];
  }

  /// Publishes the record written into acquire()'s slot.
  void publish() noexcept { publish(1); }

  // Multi-slot producer API: claim several slots, fill them in any order,
  // then make them all visible with one release-store. Lets the shm server
  // stage a whole drain batch of completions and publish once.

  /// How many slots the producer could fill right now without the consumer
  /// releasing anything.
  [[nodiscard]] std::uint64_t free_slots() const noexcept {
    return slots_ - (tail_->load(std::memory_order_relaxed) -
                     head_->load(std::memory_order_acquire));
  }

  /// Slot `offset` past the current tail (offset 0 == acquire()'s slot).
  /// Valid only while offset < free_slots(); exclusive until publish(n)
  /// with n > offset.
  [[nodiscard]] Record* producer_slot(std::uint64_t offset) noexcept {
    const std::uint64_t tail = tail_->load(std::memory_order_relaxed);
    return &base_[(tail + offset) & mask_];
  }

  /// Publishes the first `n` staged slots in one release-store.
  void publish(std::uint64_t n) noexcept {
    tail_->store(tail_->load(std::memory_order_relaxed) + n,
                 std::memory_order_release);
  }

  // --- consumer side -------------------------------------------------------

  /// Oldest unconsumed record, or nullptr when empty. Valid until
  /// release().
  [[nodiscard]] const Record* front() const noexcept {
    const std::uint64_t head = head_->load(std::memory_order_relaxed);
    if (head == tail_->load(std::memory_order_acquire)) return nullptr;
    return &base_[head & mask_];
  }

  /// Returns front()'s slot to the producer.
  void release() noexcept { release(1); }

  // Multi-slot consumer API, mirroring the producer side: read a window of
  // records, then return them all with one release-store.

  /// Unconsumed records visible right now.
  [[nodiscard]] std::uint64_t readable() const noexcept {
    return tail_->load(std::memory_order_acquire) -
           head_->load(std::memory_order_relaxed);
  }

  /// Record `offset` past the current head (offset 0 == front()'s slot).
  /// Valid only while offset < readable() and until release(n) with
  /// n > offset.
  [[nodiscard]] const Record* peek(std::uint64_t offset) const noexcept {
    const std::uint64_t head = head_->load(std::memory_order_relaxed);
    return &base_[(head + offset) & mask_];
  }

  /// Returns the first `n` read slots to the producer in one release-store.
  void release(std::uint64_t n) noexcept {
    head_->store(head_->load(std::memory_order_relaxed) + n,
                 std::memory_order_release);
  }

 private:
  std::atomic<std::uint64_t>* head_ = nullptr;
  std::atomic<std::uint64_t>* tail_ = nullptr;
  Record* base_ = nullptr;
  std::uint64_t mask_ = 0;
  std::uint32_t slots_ = 0;
};

}  // namespace cedr::shm
