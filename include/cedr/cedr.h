#pragma once
// cedr.h — the public libCEDR API (CEDR-API programming model).
//
// "APIs for use in application code are exposed to developers through the
// cedr.h header file. This header contains high level kernel declarations
// that do not contain any implementation details of the underlying
// operation." (paper §II-C)
//
// Two execution modes, selected automatically per calling thread:
//
//   Standalone (the libcedr.a path): the calling thread is not bound to a
//   CEDR runtime; every API executes its standard C/C++ implementation
//   inline. This is the rapid bring-up flow — develop and validate the
//   application as an ordinary CPU program.
//
//   Runtime-attached (the libcedr-rt.so path): the calling thread is an
//   application thread spawned by rt::Runtime::submit_api. Each API call
//   packages a task, enqueues it with the runtime (enqueue_kernel), and —
//   for the blocking forms — sleeps on a condition variable until the
//   worker thread executing the task signals completion (paper Fig. 4).
//
// Non-blocking forms (_NB suffix) return a cedr_handle_t immediately so
// "performance programmers [can] maximally exploit opportunities for
// parallelism"; synchronize with CEDR_WAIT / CEDR_BARRIER. Input and output
// buffers must stay alive and unmodified until the handle is waited on.
//
// All APIs return a Status (OK in the overwhelming case); the paper's
// void-returning style maps to ignoring it.

#include <complex>
#include <cstddef>

#include "cedr/common/status.h"

namespace cedr {

/// Complex sample type shared by the signal-processing APIs.
using cedr_cplx = std::complex<float>;

/// Element-wise operation selector for CEDR_ZIP (matches kernels::ZipOp).
enum class CedrZipOp : int {
  kMultiply = 0,
  kConjugateMultiply = 1,
  kAdd = 2,
  kSubtract = 3,
};

/// Opaque completion handle returned by non-blocking APIs.
struct cedr_handle;
using cedr_handle_t = cedr_handle*;

// --- Blocking APIs ---------------------------------------------------------

/// size-point forward FFT from input to output (may alias).
/// size must be a power of two.
Status CEDR_FFT(const cedr_cplx* input, cedr_cplx* output, std::size_t size);

/// size-point inverse FFT (normalized so IFFT(FFT(x)) == x).
Status CEDR_IFFT(const cedr_cplx* input, cedr_cplx* output, std::size_t size);

/// Element-wise op over two size-point vectors.
Status CEDR_ZIP(const cedr_cplx* a, const cedr_cplx* b, cedr_cplx* output,
                std::size_t size, CedrZipOp op = CedrZipOp::kMultiply);

/// Row-major GEMM: C(m x n) = A(m x k) * B(k x n).
Status CEDR_MMULT(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n);

// --- Non-blocking APIs -----------------------------------------------------

/// Non-blocking variants: enqueue and return a handle. In standalone mode
/// the operation executes inline and the handle is already complete. A null
/// return means the request was rejected (invalid arguments).
cedr_handle_t CEDR_FFT_NB(const cedr_cplx* input, cedr_cplx* output,
                          std::size_t size);
cedr_handle_t CEDR_IFFT_NB(const cedr_cplx* input, cedr_cplx* output,
                           std::size_t size);
cedr_handle_t CEDR_ZIP_NB(const cedr_cplx* a, const cedr_cplx* b,
                          cedr_cplx* output, std::size_t size,
                          CedrZipOp op = CedrZipOp::kMultiply);
cedr_handle_t CEDR_MMULT_NB(const float* a, const float* b, float* c,
                            std::size_t m, std::size_t k, std::size_t n);

/// Blocks until the task behind `handle` completes, releases the handle and
/// returns the task's status. Each handle must be waited on exactly once
/// (CEDR_BARRIER counts).
Status CEDR_WAIT(cedr_handle_t handle);

/// Waits on `count` handles, releasing each; returns the first non-OK
/// status encountered (after waiting on all).
Status CEDR_BARRIER(cedr_handle_t* handles, std::size_t count);

/// Non-blocking completion poll; the handle remains live.
bool CEDR_POLL(cedr_handle_t handle);

namespace api {

/// True when the calling thread is bound to a CEDR runtime (i.e. it is an
/// application thread spawned by Runtime::submit_api).
bool runtime_attached() noexcept;

}  // namespace api
}  // namespace cedr
