#pragma once
// Self-contained JSON value model, parser and serializer.
//
// CEDR's DAG-based application format, runtime configuration files and
// serialized execution traces are all JSON documents; this module is the
// single implementation behind those paths. It supports the full JSON
// grammar (RFC 8259) including \uXXXX escapes (with surrogate pairs),
// reports parse errors with line/column positions, and round-trips numbers
// as either int64 or double.

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cedr/common/status.h"

namespace cedr::json {

class Value;

using Array = std::vector<Value>;
/// Object members sorted by key; CEDR documents never depend on member order.
using Object = std::map<std::string, Value, std::less<>>;

/// Discriminator for Value.
enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

/// A JSON document node. Integers and doubles are kept distinct so task ids
/// and counts survive round-trips exactly.
class Value {
 public:
  Value() noexcept : type_(Type::kNull) {}
  Value(std::nullptr_t) noexcept : type_(Type::kNull) {}  // NOLINT implicit
  Value(bool b) noexcept : type_(Type::kBool), bool_(b) {}  // NOLINT
  Value(int i) noexcept : type_(Type::kInt), int_(i) {}  // NOLINT
  Value(std::int64_t i) noexcept : type_(Type::kInt), int_(i) {}  // NOLINT
  Value(std::size_t i) noexcept  // NOLINT implicit
      : type_(Type::kInt), int_(static_cast<std::int64_t>(i)) {}
  Value(double d) noexcept : type_(Type::kDouble), double_(d) {}  // NOLINT
  Value(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT
  Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Value(std::string_view s) : type_(Type::kString), string_(s) {}  // NOLINT
  Value(Array a) : type_(Type::kArray), array_(std::move(a)) {}  // NOLINT
  Value(Object o) : type_(Type::kObject), object_(std::move(o)) {}  // NOLINT

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_int() const noexcept { return type_ == Type::kInt; }
  [[nodiscard]] bool is_double() const noexcept { return type_ == Type::kDouble; }
  [[nodiscard]] bool is_number() const noexcept { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const noexcept { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return type_ == Type::kObject; }

  /// Typed accessors; preconditions enforced by assert in debug builds.
  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] std::int64_t as_int() const noexcept {
    return is_double() ? static_cast<std::int64_t>(double_) : int_;
  }
  [[nodiscard]] double as_double() const noexcept {
    return is_int() ? static_cast<double>(int_) : double_;
  }
  [[nodiscard]] const std::string& as_string() const noexcept { return string_; }
  [[nodiscard]] const Array& as_array() const noexcept { return array_; }
  [[nodiscard]] Array& as_array() noexcept { return array_; }
  [[nodiscard]] const Object& as_object() const noexcept { return object_; }
  [[nodiscard]] Object& as_object() noexcept { return object_; }

  /// Object member lookup; returns nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;

  /// Typed member lookups with defaults, for tolerant config parsing.
  [[nodiscard]] std::int64_t get_int(std::string_view key,
                                     std::int64_t fallback) const noexcept;
  [[nodiscard]] double get_double(std::string_view key,
                                  double fallback) const noexcept;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const noexcept;
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string_view fallback) const;

  /// Serializes compactly (no whitespace).
  [[nodiscard]] std::string dump() const;
  /// Serializes with 2-space indentation.
  [[nodiscard]] std::string dump_pretty() const;

  friend bool operator==(const Value& a, const Value& b) noexcept;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses a complete JSON document. Trailing non-whitespace is an error.
StatusOr<Value> parse(std::string_view text);

/// Reads and parses a JSON file.
StatusOr<Value> parse_file(const std::string& path);

/// Writes `value` to `path`, pretty-printed.
Status write_file(const std::string& path, const Value& value);

}  // namespace cedr::json
