#pragma once
// Structural application models for the runtime emulator.
//
// The emulator does not execute kernels; it needs each application's
// *shape*: the serial chain of CPU-glue regions and schedulable kernel
// batches the application walks through. One SimApp describes that chain;
// the emulator expands it either as a DAG instance (every segment is
// scheduled, including glue — the pre-CEDR-API model) or as an API instance
// (glue burns application-thread CPU; only kernel calls are scheduled).
//
// The three paper applications are modeled from §III's numbers:
//   Pulse Doppler — 128 pulses x 256 samples: FFT/ZIP/IFFT per pulse plus
//     256 Doppler FFTs (512 transforms total, matching the paper's "512").
//   WiFi TX — 100 packets: per-packet glue + 128-point IFFT ("100" FFTs).
//   Lane Detection — 960x540 frame: 1024-point FFT/IFFT row-column passes;
//     the paper's pipeline reaches 16384 FFT + 8192 IFFT instances. A
//     `scale` divisor shrinks the counts for tractable sweeps (documented
//     wherever used; scale=1 reproduces the paper's full count).

#include <cstdint>
#include <string>
#include <vector>

#include "cedr/platform/kernel_id.h"
#include "cedr/platform/platform.h"

namespace cedr::sim {

/// One step in an application's serial execution.
struct SimSegment {
  enum class Kind {
    kCpuGlue,      ///< non-accelerable CPU region
    kKernelBatch,  ///< `count` independent kernel invocations
  };
  Kind kind = Kind::kCpuGlue;

  /// kCpuGlue: seconds of reference-core CPU work.
  double glue_work_s = 0.0;

  /// kKernelBatch fields.
  platform::KernelId kernel = platform::KernelId::kGeneric;
  std::size_t problem_size = 0;
  std::size_t data_bytes = 0;
  std::size_t count = 0;
  /// true: the batch is issued with non-blocking APIs (all in flight);
  /// false: issued one call at a time, each awaited before the next.
  bool parallel = true;

  static SimSegment glue(double seconds) {
    SimSegment s;
    s.kind = Kind::kCpuGlue;
    s.glue_work_s = seconds;
    return s;
  }
  static SimSegment batch(platform::KernelId kernel, std::size_t problem_size,
                          std::size_t data_bytes, std::size_t count,
                          bool parallel = true) {
    SimSegment s;
    s.kind = Kind::kKernelBatch;
    s.kernel = kernel;
    s.problem_size = problem_size;
    s.data_bytes = data_bytes;
    s.count = count;
    s.parallel = parallel;
    return s;
  }
};

/// A modeled application: serial chain of segments plus frame metadata.
struct SimApp {
  std::string name;
  std::vector<SimSegment> segments;
  /// Input frame size in megabits; injection rate R (Mbps) gives the
  /// inter-arrival period frame_mbits / R (paper §III).
  double frame_mbits = 1.0;

  /// Total schedulable tasks in DAG mode (kernel calls + glue nodes).
  [[nodiscard]] std::size_t dag_task_count() const noexcept;
  /// Schedulable tasks in API mode (kernel calls only).
  [[nodiscard]] std::size_t kernel_call_count() const noexcept;

  /// HEFT upward rank per segment for the given platform: rank of segment i
  /// is its average execution estimate plus the rank of segment i+1.
  [[nodiscard]] std::vector<double> segment_ranks(
      const platform::PlatformConfig& platform) const;
};

/// Pulse Doppler structural model (paper §III). `nonblocking` selects the
/// non-blocking API issue pattern (whole batches in flight) instead of the
/// default blocking one-call-at-a-time pattern.
SimApp make_pulse_doppler_model(bool nonblocking = false);

/// WiFi TX structural model (paper §III).
SimApp make_wifi_tx_model(bool nonblocking = false);

/// Lane Detection structural model. `scale` >= 1 divides the FFT/IFFT/ZIP
/// counts (1 reproduces the paper's 16384/8192 instances for 960x540).
SimApp make_lane_detection_model(std::size_t scale = 1,
                                 bool nonblocking = false);

}  // namespace cedr::sim
