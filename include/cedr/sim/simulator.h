#pragma once
// Discrete-event emulation of the CEDR runtime.
//
// Reproduces the paper's timing experiments on a machine with none of the
// paper's hardware. The emulator models, with a virtual clock:
//
//   * CPU contention — all worker threads, accelerator-management threads
//     and API application threads share the platform's cores under
//     processor sharing (each runnable thread advances at rate
//     min(1, cores / runnable)). One extra core is reserved for the CEDR
//     main thread, as on both paper testbeds.
//   * Accelerator management — an accelerator task occupies its management
//     thread for the task's full duration (setup + DMA/cudaMemcpy + busy
//     polling), the driverless-MMIO behavior that causes Fig. 10a's
//     contention collapse.
//   * The main event loop — submissions, completion bookkeeping and app
//     termination are main-thread work items with calibrated costs
//     (SimCosts); their sum is the paper's "runtime overhead" metric.
//     Scheduling rounds run the *real* sched:: heuristics over the ready
//     queue; decision time is cost_sched_fixed + comparisons *
//     cost_per_comparison, so ETF's queue-size sensitivity (Fig. 7) is
//     emergent, not scripted.
//   * Two programming models — DAG-based (every segment, glue included, is
//     a scheduled task; the main thread parses the DAG and pushes tasks)
//     and API-based (application threads burn glue as CPU work and push
//     only kernel calls).
//
// The engine is deterministic: identical inputs give bit-identical metrics.

#include <span>
#include <vector>

#include "cedr/adapt/online_estimator.h"
#include "cedr/common/status.h"
#include "cedr/obs/metrics.h"
#include "cedr/obs/span.h"
#include "cedr/platform/fault.h"
#include "cedr/platform/platform.h"
#include "cedr/sim/model.h"

namespace cedr::sim {

/// Which programming model the emulated runtime executes.
enum class ProgrammingModel { kDagBased, kApiBased };

/// Main-thread cost constants (seconds). Calibrated against the magnitudes
/// the paper reports (Fig. 5: ms-scale runtime overhead with a ~19.5 % API
/// advantage; Fig. 7: sub-ms scheduling overhead for RR/EFT/HEFT_RT).
struct SimCosts {
  double wakeup = 1.5e-6;            ///< main-loop iteration entered from idle
  double submit_fixed = 120e-6;     ///< receive one app over IPC
  double parse_per_task = 3.0e-6;   ///< DAG-mode JSON node parse
  double push_task = 1.8e-6;        ///< main-thread ready-queue push (DAG)
  double pop_task = 0.7e-6;         ///< completion bookkeeping per task
  double terminate_app = 80e-6;     ///< app teardown + log flush
  double sched_fixed = 1.5e-6;        ///< per scheduling round
  double per_comparison = 1.5e-7;     ///< per (task, PE) cost evaluation
  double api_call_overhead = 8e-6;  ///< app-thread cost to issue one call
  /// Application-thread cost to be woken from its condvar wait after each
  /// kernel completes (context switch + condvar bookkeeping). Paid per API
  /// call, which is how API-based execution loses ground on the
  /// core-starved ZCU102 (paper §IV-A).
  double wake_overhead = 30e-6;
  /// The daemon's event loop polls for work every loop_period while the
  /// workload is live; each idle iteration costs poll_cost. At low
  /// injection rates the workload spans a long window and this term
  /// dominates the runtime overhead, producing Fig. 5's decreasing trend.
  double loop_period = 40e-6;
  double poll_cost = 1.2e-6;
  /// Ratio of an accelerator task's management-thread CPU occupancy to its
  /// profiling-table estimate. The tables are measured in isolation; under
  /// the runtime the management thread stages DMA buffers and busy-polls
  /// the status register for the task's whole duration, burning far more
  /// CPU than the isolated estimate. Schedulers decide on the optimistic
  /// table numbers — which is why cost-aware heuristics still offload and
  /// contention grows with accelerator count (paper Fig. 10a).
  double accel_occupancy = 3.0;
  /// Context-switch / cache-pollution efficiency loss: every runnable
  /// thread beyond the core count multiplies the pool's effective rate by
  /// 1/(1 + penalty * excess). This is the "increased thread contention on
  /// the underlying CPUs" of paper §IV-A: oversubscribed in-order A53
  /// cores lose real throughput to switching, not just fairness.
  double oversubscription_penalty = 0.08;
  /// Wake-to-run latency of a signalled application thread per unit of
  /// core oversubscription: after pthread_cond_signal the woken thread
  /// still waits ~latency * max(0, runnable - cores) / cores for a
  /// timeslice. Zero on an undersubscribed machine (Jetson with spare
  /// cores), hundreds of microseconds per call on the 3-core ZCU102 — the
  /// second half of §IV-A's thread-contention penalty on API execution.
  double wake_latency = 300e-6;
  /// Worker-side cost of completing one API-mode task: pthread_cond_signal
  /// with a contended mutex (futex syscall, cache-line migration to the
  /// sleeping application thread's core). DAG-mode tasks hand off through
  /// the main thread's queues and do not pay this. Together with
  /// wake_overhead this is §IV-A's per-call thread-management tax that
  /// makes API execution slower on the core-starved ZCU102.
  double signal_overhead = 40e-6;
  /// Background load contributed by every *live* API application thread,
  /// runnable or not, in runnable-thread equivalents: timer ticks, futex
  /// churn and run-queue housekeeping for 10 extra threads measurably tax
  /// a 3-core A53 cluster but disappear into a 7-core pool. DAG mode
  /// spawns no application threads and pays none of this (paper §IV-A).
  double thread_noise = 0.25;
};

/// One application instance arriving at the emulated runtime.
struct Arrival {
  const SimApp* app = nullptr;
  double time = 0.0;
};

/// Aggregate results of one emulation run.
struct SimMetrics {
  std::size_t apps = 0;
  std::size_t tasks_executed = 0;
  std::size_t sched_rounds = 0;
  std::size_t max_ready_queue = 0;
  /// Sum of per-round `comparisons` reported by the heuristic. This is the
  /// exact decision-complexity count Fig. 7 is built from; the shard
  /// refactor must keep it bit-identical for a given input.
  std::uint64_t total_comparisons = 0;
  double makespan = 0.0;               ///< completion of the last app
  double avg_execution_time = 0.0;     ///< per app, launch -> termination
  double avg_sched_overhead = 0.0;     ///< total decision time / apps
  double total_sched_time = 0.0;
  double runtime_overhead = 0.0;       ///< total main-thread mgmt time
  double runtime_overhead_per_app = 0.0;
  std::vector<double> pe_busy;         ///< busy work per PE (CPU-seconds)
  // Fault-tolerance metrics (all zero when SimConfig::faults is empty).
  std::size_t faults_injected = 0;
  std::size_t tasks_retried = 0;       ///< retry dispatches after a fault
  std::size_t pes_quarantined = 0;     ///< quarantine transitions
  std::size_t pes_reinstated = 0;      ///< probe-driven reinstatements
  std::size_t tasks_lost = 0;          ///< retries exhausted (terminal)
  // Lookahead metrics (zero unless the scheduler is a LookaheadScheduler —
  // HEFT_LA / EFT_LA; docs/scheduling.md "Lookahead rounds").
  std::size_t reservation_hits = 0;    ///< tasks dispatched from a reservation
  std::size_t reservation_stale = 0;   ///< reservations invalidated at release
};

/// Emulator configuration.
struct SimConfig {
  platform::PlatformConfig platform;
  std::string scheduler = "EFT";
  ProgrammingModel model = ProgrammingModel::kApiBased;
  SimCosts costs;
  /// Fault-injection scenario + response policy, evaluated on the virtual
  /// clock with the same deterministic per-PE streams as the runtime.
  platform::FaultPlan faults;
  /// Safety valve: abort the run if the virtual clock passes this horizon.
  double max_virtual_time_s = 3600.0;
  /// How many DAG levels past the ready snapshot a lookahead scheduler
  /// (HEFT_LA / EFT_LA) may see per round. 0 restricts lookahead rounds to
  /// the ready snapshot (no reservations). Ignored by classic heuristics —
  /// their rounds stay bit-identical regardless of this knob, which is what
  /// keeps the golden scenario bands gating.
  std::size_t lookahead_depth = 3;
  /// Optional span sink. When non-null the engine emits the same span
  /// stream as the threaded runtime — scheduling rounds, task executions,
  /// enqueue->dispatch->execute flows, fault instants, app lifecycle — with
  /// virtual-clock timestamps and the same pid/tid track convention
  /// (obs/chrome_trace.h). Because the engine is deterministic, identical
  /// inputs produce a byte-identical exported Chrome trace.
  obs::SpanTracer* tracer = nullptr;
  /// Optional online cost estimator (docs/adaptive_costs.md). When non-null
  /// the engine feeds it one observation per successful task completion
  /// (on the virtual clock) and every scheduling round consumes its latest
  /// published snapshot — the same wiring as the threaded runtime, so
  /// identical seeded runs produce identical learned tables.
  adapt::OnlineCostEstimator* adapt = nullptr;
  /// Optional override for the tables the *scheduler* consults when `adapt`
  /// is null. Ground-truth execution durations always come from
  /// platform.costs; pointing this at a perturbed copy models a
  /// mis-calibrated static baseline (bench/micro_adapt.cpp).
  const platform::CostModel* sched_costs = nullptr;
  /// Optional *wall-clock* histogram of the real heuristic's decision time
  /// per scheduling round, in microseconds. The virtual clock is untouched —
  /// this measures the host-side cost of running the sched:: heuristic over
  /// the emulated ready queue, which is what bench/fig10_scalability tracks
  /// across PRs (BENCH_fig10.json).
  obs::QuantileHistogram* sched_decision_us = nullptr;
  /// Optional wall-clock histogram of contended ready-queue shard lock
  /// waits, in microseconds (docs/scheduling.md). Zero contention in the
  /// single-threaded emulator; wired so sim and runtime share plumbing.
  obs::QuantileHistogram* sched_lock_wait_us = nullptr;
  /// Optional *virtual-clock* histograms (microseconds), the deterministic
  /// counterparts of the runtime's queue_delay_us / service_time_us /
  /// sched_decision_us metrics: ready->dispatch wait, dispatch->completion
  /// service, and the modeled per-round decision cost (sched_fixed +
  /// comparisons * per_comparison). Identical inputs fill them identically,
  /// which is what lets the scenario harness (docs/scenarios.md) diff their
  /// quantiles against golden metric bands.
  obs::QuantileHistogram* queue_delay_us = nullptr;
  obs::QuantileHistogram* service_time_us = nullptr;
  obs::QuantileHistogram* sched_round_us = nullptr;
};

/// Runs one emulation over the given arrival sequence (need not be sorted).
StatusOr<SimMetrics> simulate(const SimConfig& config,
                              std::span<const Arrival> arrivals);

}  // namespace cedr::sim
