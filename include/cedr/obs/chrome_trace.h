#pragma once
// Chrome trace-event JSON exporter.
//
// Converts a SpanTracer snapshot into the Trace Event Format understood by
// chrome://tracing and Perfetto (https://ui.perfetto.dev): a top-level
// {"traceEvents":[...]} object whose entries carry ph "X" (complete spans),
// "i" (instants), "s"/"t"/"f" (flows), and "M" (process/thread metadata).
// Timestamps and durations are converted from seconds to microseconds, and
// events are emitted sorted by timestamp so per-track order is monotonic.
//
// Track convention (see docs/observability.md):
//   pid 0               = the runtime itself
//     tid 0             = main event loop / scheduler
//     tid 1 + pe        = worker thread for PE index `pe`
//     tid kIpcTid       = IPC command lane
//   pid 1 + instance id = one process group per application instance

#include <cstdint>
#include <string>
#include <vector>

#include "cedr/common/status.h"
#include "cedr/json/json.h"
#include "cedr/obs/span.h"

namespace cedr::obs {

/// Reserved tid for IPC command handling under pid 0.
inline constexpr std::uint64_t kIpcTid = 1000;

/// Names a (pid, tid) track in the exported trace; emitted as "M" metadata.
struct TrackName {
  std::uint64_t pid = 0;
  std::uint64_t tid = 0;          ///< ignored for process_name entries
  bool is_process = false;        ///< true => names the pid, not the tid
  std::string name;
};

/// Builds the {"traceEvents":[...]} document from `events`. `tracks`
/// supplies human-readable process/thread names; (pid, tid) pairs that
/// appear in events but not in `tracks` get generated names.
json::Value chrome_trace_json(const std::vector<SpanEvent>& events,
                              const std::vector<TrackName>& tracks = {});

/// Serializes chrome_trace_json() to `path`.
Status write_chrome_trace(const std::string& path,
                          const std::vector<SpanEvent>& events,
                          const std::vector<TrackName>& tracks = {});

}  // namespace cedr::obs
