#pragma once
// Background metrics sampler.
//
// Runs a dedicated thread that invokes a callback every `period_s` seconds
// (the callback typically reads runtime state and feeds a MetricsRegistry).
// Stop is prompt: the thread waits on a condition variable, not a plain
// sleep, so shutdown does not block for a full period.

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

namespace cedr::obs {

class Sampler {
 public:
  /// `tick` receives the seconds elapsed since start().
  Sampler(double period_s, std::function<void(double)> tick);
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Idempotent; no-op when the period is <= 0 or the thread already runs.
  void start();
  /// Idempotent; joins the thread. The callback is never invoked after
  /// stop() returns.
  void stop();

  bool running() const { return thread_.joinable(); }
  double period_s() const { return period_s_; }

 private:
  void loop();

  double period_s_;
  std::function<void(double)> tick_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace cedr::obs
