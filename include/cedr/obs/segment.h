#pragma once
// Compact binary trace segments (`.cbt`) — the continuous trace pipeline.
//
// A long-running daemon cannot hold its span ring until shutdown: a crash
// loses everything and a week of spans does not fit one Chrome JSON. This
// module serializes ring drains into rotated, bounded, individually
// self-contained segment files that survive a SIGKILL mid-run:
//
//   SpanTracer --drain cursor--> TraceFlusher --append--> SegmentWriter
//        (ring, wait-free)        (periodic, sampler thread)   (dir of .cbt)
//
// and back:
//
//   list_segments() -> read_segment() per file -> stitch_segments()
//        -> chrome_trace_json()  (byte-identical to the direct export)
//
// Format (all integers little-endian, doubles as IEEE-754 LE bit patterns;
// full spec table in docs/observability.md):
//
//   header (56 bytes):
//     0  magic "CBT1"
//     4  u32 version (currently 1)
//     8  u64 segment sequence number within the run
//     16 u64 first ticket (global record index of the first span record)
//     24 u64 span record count
//     32 u64 events dropped since the previous segment (ring overwrites
//            that outran the drain cursor)
//     40 u32 track record count
//     44 u32 string-table bytes
//     48 u32 CRC-32 (IEEE) of the payload
//     52 u32 payload bytes (string table + tracks + records)
//   payload:
//     string table: concatenated NUL-terminated strings, referenced by
//       byte offset; offset 0xFFFFFFFF means "absent"
//     track records (24 bytes each): u64 pid, u64 tid, u8 is_process,
//       3 pad bytes, u32 name offset
//     span records (80 bytes each): u8 kind, u8 category, u16 pad,
//       u32 name offset, u64 ticket, f64 ts, f64 dur, u64 pid, u64 tid,
//       u64 flow id, u32 arg0-name offset, u32 arg1-name offset,
//       f64 arg0, f64 arg1
//
// Each segment embeds the full track table as of its write time (tracks are
// append-only in both runtimes), so any suffix of surviving segments still
// names every pid/tid it references. Segments are written atomically
// (tmp + rename): an open segment is rewritten durably on every flush and
// finalized on size/age rotation, so the directory never contains a
// half-written file and a SIGKILL loses at most the events recorded since
// the last flush.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "cedr/common/status.h"
#include "cedr/obs/chrome_trace.h"
#include "cedr/obs/span.h"

namespace cedr::obs {

/// Magic + version the reader accepts.
inline constexpr char kSegmentMagic[4] = {'C', 'B', 'T', '1'};
inline constexpr std::uint32_t kSegmentVersion = 1;
/// String-table offset meaning "no string" (absent arg name).
inline constexpr std::uint32_t kNoString = 0xFFFFFFFFu;

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over `data`.
std::uint32_t crc32(const void* data, std::size_t size);

/// Serializes one complete segment to `path` atomically (`path.tmp` then
/// rename). Events must be in ticket order.
Status write_segment_file(const std::string& path, std::uint64_t seq,
                          std::uint64_t dropped_since_prev,
                          const std::vector<TrackName>& tracks,
                          const std::vector<SpanTracer::TicketedEvent>& events);

/// One parsed segment. `events` hold SpanEvents whose arg-name pointers
/// reference `strings`, so a Segment must stay alive (move is fine, copy is
/// not) as long as its events are used.
struct Segment {
  std::uint64_t seq = 0;
  std::uint64_t first_ticket = 0;
  std::uint64_t dropped_since_prev = 0;
  std::vector<TrackName> tracks;
  std::vector<std::string> strings;  ///< backing store for arg names
  std::vector<SpanTracer::TicketedEvent> events;
};

/// Parses and validates one `.cbt` file: magic, version, exact payload
/// size, CRC. Truncated or corrupt files fail with InvalidArgument naming
/// the defect; they never crash the reader.
StatusOr<Segment> read_segment(const std::string& path);

/// Lists `*.cbt` files under `dir`, sorted by file name (segment names are
/// zero-padded, so name order is sequence order).
StatusOr<std::vector<std::string>> list_segments(const std::string& dir);

/// Rotated segments stitched back into one event stream: deduplicated by
/// ticket across any overwrite/rotation boundary, re-sorted to monotonic
/// ticket order, with the track tables unioned in first-appearance order
/// (append-only, so the union equals the newest segment's table). Keeps the
/// parsed segments alive because events point into their string tables.
struct StitchedTrace {
  std::vector<Segment> segments;   ///< backing store; do not reorder
  std::vector<TrackName> tracks;
  std::vector<SpanEvent> events;   ///< ticket order, duplicates removed
  std::uint64_t dropped_total = 0;    ///< sum of per-segment drop counts
  std::uint64_t duplicates_removed = 0;
};

/// Reads and stitches the given segment files (typically list_segments()
/// output). Fails if any file is unreadable or corrupt.
StatusOr<StitchedTrace> stitch_segments(const std::vector<std::string>& paths);

/// Writes `.cbt` segments into a directory with size/age-based rotation and
/// bounded retention. Not thread-safe; the TraceFlusher serializes access.
class SegmentWriter {
 public:
  struct Config {
    std::string dir;
    /// Size-based rotation: finalize the open segment once it holds this
    /// many span records.
    std::size_t max_segment_events = 8192;
    /// Age-based rotation: finalize the open segment once its oldest event
    /// has been pending this long (caller-supplied clock; virtual time in
    /// the emulator). <= 0 disables age rotation.
    double max_segment_age_s = 10.0;
    /// Retention: keep at most this many finalized segments on disk (plus
    /// the open one); older files are deleted. 0 = unbounded.
    std::size_t max_segments = 64;
    std::string prefix = "trace-";
  };

  explicit SegmentWriter(Config config) : config_(std::move(config)) {}

  /// Creates the directory if needed and resumes numbering after any
  /// existing segments (a restarted daemon reusing a directory appends
  /// rather than overwriting).
  Status open();

  /// Buffers `events` into the open segment (splitting across rotation
  /// boundaries when a drain exceeds max_segment_events), adds `dropped`
  /// to the open segment's drop count, and rewrites the open segment file
  /// durably. `tracks` is the full track table as of now.
  Status append(const std::vector<SpanTracer::TicketedEvent>& events,
                std::uint64_t dropped, const std::vector<TrackName>& tracks,
                double now);

  /// Flushes and finalizes the open segment (if it holds anything); the
  /// next append starts a new sequence number.
  Status finalize(const std::vector<TrackName>& tracks);

  /// Monitoring counters; safe to read from other threads (the metrics
  /// sampler publishes `obs.trace_segments` while the flush thread
  /// rotates), hence atomic with relaxed ordering.
  [[nodiscard]] std::uint64_t segments_finalized() const {
    return segments_finalized_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t events_written() const {
    return events_written_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t current_seq() const { return seq_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  [[nodiscard]] std::string segment_path(std::uint64_t seq) const;
  Status write_open_segment(const std::vector<TrackName>& tracks);
  /// Closes the open segment and applies the retention bound.
  Status rotate();

  Config config_;
  std::vector<SpanTracer::TicketedEvent> pending_;
  std::uint64_t pending_dropped_ = 0;
  double open_since_ = -1.0;  ///< `now` of the first pending event
  bool open_written_ = false; ///< open segment exists on disk
  std::uint64_t seq_ = 0;
  std::atomic<std::uint64_t> segments_finalized_{0};
  std::atomic<std::uint64_t> events_written_{0};
  std::deque<std::string> finalized_;  ///< retention ring, oldest first
};

/// Periodic ring drain: owns the drain cursor, consumes the tracer's drop
/// counter, and feeds a SegmentWriter. flush() is designed to run on the
/// background sampler thread; finish() runs the shutdown tail flush. The
/// two may race (sampler tick vs shutdown), so flushing is serialized by a
/// mutex — recording hot paths are never involved in it.
class TraceFlusher {
 public:
  TraceFlusher(const SpanTracer& tracer, SegmentWriter::Config config,
               std::function<std::vector<TrackName>()> tracks_fn)
      : tracer_(tracer),
        writer_(std::move(config)),
        tracks_fn_(std::move(tracks_fn)) {}

  Status open() { return writer_.open(); }

  /// Drains new events and appends them to the open segment.
  Status flush(double now);

  /// Tail flush + finalize; call after the last producer has quiesced.
  Status finish(double now);

  /// Cumulative events lost to ring overwrite before they were drained
  /// (the `obs.trace_dropped_total` gauge).
  [[nodiscard]] std::uint64_t dropped_total() const {
    return dropped_total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const SegmentWriter& writer() const { return writer_; }

 private:
  const SpanTracer& tracer_;
  SegmentWriter writer_;
  std::function<std::vector<TrackName>()> tracks_fn_;
  std::mutex mutex_;  ///< serializes flush() vs finish()
  std::uint64_t cursor_ = 0;
  std::atomic<std::uint64_t> dropped_total_{0};
};

}  // namespace cedr::obs
