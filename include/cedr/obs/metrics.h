#pragma once
// Live metrics: named gauges, streaming-quantile histograms, and bounded
// time series.
//
// Histograms use HDR-style log-linear bucketing (an octave per power of two,
// subdivided into linear sub-buckets) which keeps the relative quantile
// error under ~3% with a few KB of fixed storage — no sample retention, so
// feeding one from a hot path is a mutex acquire plus two array increments.
// All histogram values are in microseconds by convention (metric names end
// in `_us`); gauges and series carry their unit in the name.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cedr/json/json.h"

namespace cedr::obs {

/// Streaming quantile estimator over non-negative values.
class QuantileHistogram {
 public:
  static constexpr int kOctaves = 64;        ///< covers doubles up to 2^63
  static constexpr int kSubBuckets = 32;     ///< linear slices per octave

  void record(double value);
  /// Zeroes all counts — starts a fresh measurement epoch. Safe to call
  /// while recorders are live (they just land in the new epoch).
  void reset();

  /// Caller-owned delta cursor for snapshot_delta(). Each consumer keeps
  /// its own Epoch, so — unlike reset(), which clobbers every reader's
  /// view — any number of independent delta readers can coexist with each
  /// other and with lifetime-aggregate consumers.
  struct Epoch {
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  /// Samples recorded since `epoch` was last passed in.
  struct Delta {
    std::uint64_t count = 0;
    double sum = 0.0;
    [[nodiscard]] double mean() const {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
  };
  /// Returns the count/sum recorded since the previous call with this
  /// `epoch` and advances it. A reset() in between (totals went backwards)
  /// restarts the epoch: the delta is everything recorded since the reset.
  Delta snapshot_delta(Epoch& epoch) const;
  std::uint64_t count() const;
  double sum() const;
  double min() const;
  double max() const;
  double mean() const;
  /// Nearest-rank quantile estimate for q in [0,1] (the ceil(q*count)-th
  /// smallest sample's bucket); 0 when empty. Estimates are clamped to the
  /// observed [min, max].
  double quantile(double q) const;

  /// {"count":..,"sum":..,"mean":..,"p50":..,"p95":..,"p99":..,"max":..}
  json::Value to_json() const;

 private:
  double bucket_representative(int bucket) const;
  static int bucket_index(double value);

  mutable std::mutex mutex_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  // Bucket 0 is the underflow bucket [0, 1); bucket 1 + octave*kSubBuckets
  // + sub covers [2^octave, 2^(octave+1)) split linearly.
  std::uint64_t buckets_[1 + kOctaves * kSubBuckets] = {};
};

/// Registry of named gauges, histograms and bounded time series. Thread-safe;
/// histogram references returned by `histogram()` are stable for the
/// registry's lifetime so hot paths can cache them.
class MetricsRegistry {
 public:
  void set_gauge(const std::string& name, double value);
  double gauge(const std::string& name) const;  ///< 0 when absent
  std::map<std::string, double> gauges() const;

  QuantileHistogram& histogram(const std::string& name);

  /// Appends (t, value) to the named series, keeping the most recent
  /// `kSeriesCapacity` points.
  void sample(const std::string& name, double t, double value);

  struct SeriesPoint {
    double t = 0.0;
    double value = 0.0;
  };
  std::vector<SeriesPoint> series(const std::string& name) const;

  /// Full snapshot: {"gauges":{..}, "histograms":{..}, "series":{..}}.
  /// Series are truncated to their most recent `series_tail` points so the
  /// snapshot stays small enough for a one-line IPC reply.
  json::Value to_json(std::size_t series_tail = 32) const;

  static constexpr std::size_t kSeriesCapacity = 512;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, double> gauges_;
  std::map<std::string, std::unique_ptr<QuantileHistogram>> histograms_;
  std::map<std::string, std::vector<SeriesPoint>> series_;
};

}  // namespace cedr::obs
