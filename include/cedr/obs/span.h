#pragma once
// Lock-free span tracer.
//
// The runtime's hot paths (enqueue, scheduling rounds, per-PE workers, IPC)
// record fixed-size span events into a preallocated ring buffer. Recording
// is wait-free on the fast path: a relaxed fetch_add claims a slot and a
// per-slot sequence word (even = stable, odd = being written) guards the
// payload copy so concurrent snapshot readers never observe a torn event.
// When the ring wraps, the oldest events are overwritten — the tracer keeps
// the most recent `capacity` events, and `dropped()` reports how many were
// lost, so a full trace of a long run requires sizing the ring up front.
//
// Timestamps are supplied by the caller (seconds, arbitrary epoch): the
// threaded runtime passes wall-clock offsets from its epoch while the
// discrete-event simulator passes virtual time, which is what gives the two
// execution surfaces an identical span stream for golden testing.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

namespace cedr::obs {

/// Chrome trace-event phases the exporter understands.
enum class EventKind : std::uint8_t {
  kComplete,   ///< span with duration (ph "X")
  kInstant,    ///< point event (ph "i")
  kFlowBegin,  ///< flow start (ph "s")
  kFlowStep,   ///< flow step (ph "t")
  kFlowEnd,    ///< flow end (ph "f", binding point "enclosing")
};

/// Span taxonomy; becomes the Chrome "cat" field.
enum class Category : std::uint8_t {
  kRuntime,  ///< main-loop work: enqueue, completion drain
  kSched,    ///< scheduling rounds
  kWorker,   ///< per-PE task execution
  kIpc,      ///< socket command handling
  kApp,      ///< app lifecycle markers
  kFault,    ///< fault injection / retry / quarantine markers
  kSim,      ///< simulator engine internals
};

const char* category_name(Category cat);

/// One fixed-size trace event. POD so a slot claim + memcpy is enough; the
/// name is truncated to fit and arg names must be string literals (only the
/// pointer is stored).
struct SpanEvent {
  static constexpr std::size_t kNameCapacity = 48;

  EventKind kind = EventKind::kComplete;
  Category category = Category::kRuntime;
  char name[kNameCapacity] = {};
  double ts = 0.0;   ///< seconds since the surface's epoch
  double dur = 0.0;  ///< seconds; kComplete only
  std::uint64_t pid = 0;      ///< 0 = runtime, otherwise app instance id
  std::uint64_t tid = 0;      ///< 0 = main loop, 1+pe = worker, see chrome_trace.h
  std::uint64_t flow_id = 0;  ///< nonzero on flow events
  const char* arg0_name = nullptr;  ///< string literal or nullptr
  double arg0 = 0.0;
  const char* arg1_name = nullptr;  ///< string literal or nullptr
  double arg1 = 0.0;

  void set_name(const char* text);
};

/// MPMC ring buffer of SpanEvents. Writers are wait-free apart from the
/// per-slot claim; `snapshot()` may run concurrently with recording and
/// returns the surviving events in record order.
class SpanTracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit SpanTracer(std::size_t capacity = kDefaultCapacity);

  /// Cheap global gate; when disabled record() is a single relaxed load.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void record(const SpanEvent& event);

  /// Convenience wrappers; no-ops when disabled.
  void complete_span(Category cat, const char* name, std::uint64_t pid,
                     std::uint64_t tid, double start, double duration,
                     const char* arg0_name = nullptr, double arg0 = 0.0,
                     const char* arg1_name = nullptr, double arg1 = 0.0);
  void instant(Category cat, const char* name, std::uint64_t pid,
               std::uint64_t tid, double ts, const char* arg0_name = nullptr,
               double arg0 = 0.0, const char* arg1_name = nullptr,
               double arg1 = 0.0);
  void flow(EventKind kind, Category cat, const char* name, std::uint64_t pid,
            std::uint64_t tid, double ts, std::uint64_t flow_id);

  /// Copies out the currently stored events, oldest first. Safe to call
  /// while other threads keep recording; events written mid-snapshot may or
  /// may not be included.
  std::vector<SpanEvent> snapshot() const;

  /// An event paired with its global record index, as returned by drain().
  /// Tickets are unique and monotonically increasing over the tracer's
  /// lifetime, which is what lets a segment reader dedup and re-sort events
  /// across rotated files.
  struct TicketedEvent {
    std::uint64_t ticket = 0;
    SpanEvent event;
  };

  /// Incremental consumer API for the continuous trace pipeline
  /// (docs/observability.md). Copies every event with ticket >= `cursor`
  /// that still survives in the ring, advances `cursor` past the end of the
  /// copied window, and returns the events in ticket order. The cursor is
  /// caller-owned (start at 0); recording is never blocked — a drain takes
  /// the same per-slot claim a writer does, for the duration of one struct
  /// copy. Events the ring overwrote before the cursor reached them are
  /// lost and counted into the drain-drop counter (consume_dropped()).
  std::vector<TicketedEvent> drain(std::uint64_t& cursor) const;

  /// Drain-drop counter: events that fell out of the ring before a drain()
  /// cursor reached them, accumulated since the previous call; calling
  /// consumes (zeroes) the counter, so a segment flusher can stamp each
  /// segment with the drops *since the previous segment* instead of the
  /// lifetime total dropped() reports. Single-consumer by design.
  std::uint64_t consume_dropped() const {
    return drain_dropped_.exchange(0, std::memory_order_relaxed);
  }
  /// Current (unconsumed) drain-drop count.
  std::uint64_t drain_dropped() const {
    return drain_dropped_.load(std::memory_order_relaxed);
  }

  std::size_t capacity() const { return capacity_; }
  /// Total events recorded since construction.
  std::uint64_t recorded() const {
    return cursor_.load(std::memory_order_relaxed);
  }
  /// Events overwritten because the ring wrapped.
  std::uint64_t dropped() const {
    const std::uint64_t n = recorded();
    return n > capacity_ ? n - capacity_ : 0;
  }

 private:
  struct Slot {
    /// Even = stable, odd = writer active. Monotonically increasing.
    std::atomic<std::uint32_t> seq{0};
    std::uint64_t ticket = 0;  ///< global record index, for snapshot ordering
    SpanEvent event;
  };

  std::size_t capacity_;  ///< power of two
  std::size_t mask_;
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> cursor_{0};
  /// Events overwritten before a drain() cursor reached them; zeroed by
  /// consume_dropped(). Mutable: draining is logically const (it never
  /// changes the stored events), but must account what it could not read.
  mutable std::atomic<std::uint64_t> drain_dropped_{0};
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace cedr::obs
