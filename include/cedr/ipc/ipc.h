#pragma once
// IPC submission flow (paper Fig. 1).
//
// CEDR runs as a daemon; applications are submitted to it over
// inter-process communication and a shutdown command makes it serialize its
// logs. This module implements that flow over a Unix-domain stream socket
// with a line-oriented protocol:
//
//   SUBMIT <path-to-shared-object> [app-name]   -> OK <instance-id> | ERR msg
//   SUBMITDAG <path-to-dag-json> [app-name]      -> OK <instance-id> | ERR msg
//   STATUS                                      -> OK submitted=N completed=M
//   STATS                                       -> OK uptime_s=... ready=...
//   METRICS                                     -> OK {json}   (one line)
//   COSTS                                       -> OK {json}   (one line)
//   WAIT                                        -> OK            (drains apps)
//   SHUTDOWN                                    -> OK            (stops daemon)
//
// STATS is a one-line key=value snapshot of live runtime state (queue depth,
// per-PE busy fractions); METRICS returns the full MetricsRegistry snapshot
// plus counters as compact JSON. Both work while applications are in flight
// (see docs/observability.md for field-by-field definitions). COSTS dumps
// the online cost-model adaptation state — static vs learned coefficients,
// sample/rejection counts and relative error per (kernel, PE class) — as
// JSON; on a daemon without --adapt it reports {"enabled": false}
// (see docs/adaptive_costs.md).
//
// A submitted shared object must export  extern "C" void cedr_app_main(void);
// The daemon dlopens it and launches cedr_app_main as an API-mode
// application thread, so every CEDR_* call inside it is scheduled by the
// daemon's runtime — exactly the libcedr-rt.so execution path of Fig. 3.

#include <string>
#include <thread>

#include "cedr/common/status.h"
#include "cedr/runtime/runtime.h"

namespace cedr::ipc {

/// Server half: accepts submissions for an existing runtime.
class IpcServer {
 public:
  /// `trace_path`: where execution logs are serialized on SHUTDOWN
  /// (empty string disables serialization).
  IpcServer(rt::Runtime& runtime, std::string socket_path,
            std::string trace_path = "");
  IpcServer(const IpcServer&) = delete;
  IpcServer& operator=(const IpcServer&) = delete;
  ~IpcServer();

  /// Binds the socket and starts the accept loop.
  Status start();
  /// Stops accepting and joins the accept thread. Idempotent.
  void stop();
  /// Blocks until a SHUTDOWN command has been processed.
  void wait_for_shutdown();

  [[nodiscard]] const std::string& socket_path() const noexcept {
    return socket_path_;
  }

 private:
  void accept_loop();
  std::string handle_command(const std::string& line);

  rt::Runtime& runtime_;
  std::string socket_path_;
  std::string trace_path_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  std::vector<void*> loaded_objects_;  ///< dlopen handles, closed in dtor
  std::mutex objects_mutex_;
};

/// Client half: one round-trip per call.
class IpcClient {
 public:
  explicit IpcClient(std::string socket_path)
      : socket_path_(std::move(socket_path)) {}

  /// Submits a shared-object application; returns the instance id.
  StatusOr<std::uint64_t> submit(const std::string& so_path,
                                 const std::string& app_name = "");
  /// Submits an executable JSON DAG application (apps/executable_dag.h).
  StatusOr<std::uint64_t> submit_dag(const std::string& json_path);
  /// Returns (submitted, completed).
  StatusOr<std::pair<std::uint64_t, std::uint64_t>> status();
  /// Returns the one-line STATS snapshot (without the leading "OK ").
  StatusOr<std::string> stats();
  /// Returns the METRICS snapshot, parsed:
  /// {"metrics": {...}, "counters": {...}, "stats": {...}}.
  StatusOr<json::Value> metrics();
  /// Returns the COSTS snapshot, parsed (adapt::OnlineCostEstimator JSON;
  /// {"enabled": false} when the daemon runs without --adapt).
  StatusOr<json::Value> costs();
  /// Blocks server-side until all submitted applications complete.
  Status wait_all();
  /// Asks the daemon to serialize logs and exit its accept loop.
  Status shutdown();

 private:
  StatusOr<std::string> round_trip(const std::string& command);
  std::string socket_path_;
};

}  // namespace cedr::ipc
