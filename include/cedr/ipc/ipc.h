#pragma once
// IPC submission flow (paper Fig. 1).
//
// CEDR runs as a daemon; applications are submitted to it over
// inter-process communication and a shutdown command makes it serialize its
// logs. This module implements that flow over a Unix-domain stream socket
// with a line-oriented protocol (full reference: docs/ipc.md):
//
//   SUBMIT <path-to-shared-object> [app-name]   -> OK <instance-id> | ERR msg
//   SUBMITDAG <path-to-dag-json> [app-name]     -> OK <instance-id> | ERR msg
//   SHMOPEN                                     -> OK sub_slots=... | ERR msg
//                                                  (+3 SCM_RIGHTS fds)
//   STATUS                                      -> OK submitted=N completed=M
//   STATS                                       -> OK uptime_s=... ready=...
//   METRICS                                     -> OK {json}   (one line)
//   COSTS                                       -> OK {json}   (one line)
//   WAIT                                        -> OK            (drains apps)
//   SHUTDOWN                                    -> OK            (stops daemon)
//   BYE                                         -> (closes the connection)
//
// Connections are persistent: a client may send many commands — pipelined
// back to back without waiting — over one connection; replies come back in
// command order, one LF-terminated line each. BYE or EOF ends the
// connection. When the runtime is saturated (IpcServerConfig::
// max_inflight_apps), SUBMIT/SUBMITDAG get `BUSY <retry-after-ms>` instead
// of queueing without bound; the daemon counts these as
// `ipc.rejected_total`.
//
// The server is a poll(2) event loop: cheap verbs (STATUS, STATS, METRICS,
// COSTS) execute on the loop itself, while slow verbs (SUBMIT's dlopen,
// SUBMITDAG's JSON load, WAIT, SHUTDOWN's trace serialization) run on a
// small worker pool so one submitter stalled on disk I/O never delays
// another client's STATS poll.
//
// SHMOPEN negotiates the shared-memory submission lane (cedr::shm, see
// docs/ipc.md "Shared-memory lane"): the daemon creates a per-client
// segment with SPSC submission/completion rings plus an argument arena and
// replies with the segment fd and two doorbell eventfds attached as
// SCM_RIGHTS ancillary data. It must be the first command on its
// connection; the connection then stays open as the session's lifeline —
// EOF (including a SIGKILLed client) reaps the segment. The socket lane
// remains fully functional alongside and is the fallback when the daemon
// runs with shm disabled.
//
// A submitted shared object must export  extern "C" void cedr_app_main(void);
// The daemon dlopens it and launches cedr_app_main as an API-mode
// application thread, so every CEDR_* call inside it is scheduled by the
// daemon's runtime — exactly the libcedr-rt.so execution path of Fig. 3.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cedr/common/queue.h"
#include "cedr/common/status.h"
#include "cedr/ipc/framing.h"
#include "cedr/obs/metrics.h"
#include "cedr/runtime/runtime.h"

namespace cedr::shm {
class ShmServer;
}  // namespace cedr::shm

namespace cedr::ipc {

/// Front-end knobs: concurrency, admission control, back-pressure.
struct IpcServerConfig {
  /// Worker threads executing slow verbs off the event loop.
  std::size_t worker_threads = 4;
  /// Admission bound on in-flight application instances (submitted minus
  /// completed, plus submissions still in the worker pool). SUBMIT and
  /// SUBMITDAG beyond it are rejected with `BUSY <retry-after-ms>`.
  /// 0 = unbounded.
  std::size_t max_inflight_apps = 0;
  /// Retry hint carried in BUSY replies, milliseconds.
  std::uint32_t busy_retry_ms = 50;
  /// Parsed-but-unanswered commands allowed per connection before the
  /// server stops reading from it (back-pressure lands in the client's
  /// socket buffer instead of daemon memory).
  std::size_t max_pending_per_conn = 64;
  /// Simultaneous connections; beyond it the listener pauses accepting
  /// and excess connectors wait in the listen backlog.
  std::size_t max_connections = 256;
  /// Shared-memory lane (SHMOPEN). Disabled -> SHMOPEN answers ERR and
  /// clients fall back to the socket lane.
  bool enable_shm = true;
  /// Per-session ring/arena geometry (slot counts must be powers of two).
  std::uint32_t shm_sub_slots = 1024;
  std::uint32_t shm_cpl_slots = 1024;
  std::uint32_t shm_arena_bytes = 1u << 20;
  /// Simultaneous shm sessions; beyond it SHMOPEN is refused (the client
  /// falls back to the socket lane).
  std::size_t max_shm_sessions = 64;
};

/// Server half: accepts submissions for an existing runtime.
class IpcServer {
 public:
  /// `trace_path`: where execution logs are serialized on SHUTDOWN
  /// (empty string disables serialization).
  IpcServer(rt::Runtime& runtime, std::string socket_path,
            std::string trace_path = "", IpcServerConfig config = {});
  IpcServer(const IpcServer&) = delete;
  IpcServer& operator=(const IpcServer&) = delete;
  ~IpcServer();

  /// Binds the socket and starts the event loop plus the worker pool.
  Status start();
  /// Stops the event loop, closes every connection, joins all threads.
  /// Idempotent.
  void stop();
  /// Blocks until a SHUTDOWN command has been processed.
  void wait_for_shutdown();

  [[nodiscard]] const std::string& socket_path() const noexcept {
    return socket_path_;
  }
  [[nodiscard]] const IpcServerConfig& config() const noexcept {
    return config_;
  }

 private:
  /// Per-connection state machine. The event-loop thread owns the fd, the
  /// read framer and the write buffer; the ordered reply queue is shared
  /// with the worker pool under `state_mutex_`.
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    LineFramer framer;
    std::string out;            ///< reply bytes not yet written
    std::size_t out_pos = 0;    ///< written prefix of `out`
    bool read_eof = false;      ///< peer half-closed; flush replies, close
    bool closing = false;       ///< fatal protocol/io error; flush, close
    bool bye = false;           ///< BYE received; later bytes are discarded
    /// Replies in command order; `ready` flips when the verb finishes.
    struct Reply {
      std::uint64_t seq = 0;
      bool ready = false;
      std::string text;
    };
    std::deque<Reply> replies;
    std::uint64_t next_seq = 0;
    /// SHMOPEN descriptors to attach (SCM_RIGHTS) to the next write on
    /// this connection; owned by the shm session, not the connection.
    std::vector<int> pending_fds;
  };

  /// One slow verb queued for the worker pool. When `shm_session` is
  /// non-zero the job is a ring drain for that session instead of a
  /// protocol line.
  struct Job {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    std::string line;
    double admit_time = 0.0;
    std::uint64_t shm_session = 0;
  };

  void event_loop();
  void worker_loop();
  void accept_ready();
  /// Reads available bytes into the connection's framer.
  void read_ready(Connection& conn);
  /// Extracts buffered lines while the pending bound allows and dispatches
  /// each (inline or to the worker pool).
  void drain_framer(Connection& conn);
  void dispatch_line(Connection& conn, const std::string& line);
  /// Moves in-order ready replies into the write buffer, then writes.
  void flush_replies(Connection& conn);
  void write_ready(Connection& conn);
  void close_connection(std::uint64_t id);
  /// Appends a reply slot; returns its sequence number.
  std::uint64_t push_slot(Connection& conn);
  /// Fills a slot (worker pool or inline path) and wakes the event loop.
  void deposit_reply(std::uint64_t conn_id, std::uint64_t seq,
                     std::string text);
  /// Admission check for SUBMIT/SUBMITDAG. True = admit; false = reply BUSY.
  bool admit_submit();
  void wake();
  /// `ipc_cmd_us.<verb>` histogram; known verbs hit a pointer cached at
  /// construction (histogram references are registry-stable) so the hot
  /// path skips the name build and registry lookup.
  obs::QuantileHistogram& cmd_histogram(const std::string& verb);

  /// Executes one command line and returns the reply (LF-terminated).
  /// Runs on the event loop for cheap verbs, on the worker pool for slow
  /// ones; records the `ipc_cmd_us.<verb>` latency histogram from
  /// `admit_time` (event-loop parse) to completion.
  std::string handle_command(const std::string& line, double admit_time);

  rt::Runtime& runtime_;
  std::string socket_path_;
  std::string trace_path_;
  IpcServerConfig config_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< [read, write]; workers wake the loop
  /// True while a wake byte is in flight: deposits arriving in a burst
  /// collapse into one pipe write instead of one syscall each.
  std::atomic<bool> wake_pending_{false};
  /// Cached `ipc_cmd_us.<verb>` histograms, indexed by cmd_verb_index().
  obs::QuantileHistogram* cmd_hist_[8] = {};
  std::thread loop_thread_;
  std::vector<std::thread> workers_;
  BlockingQueue<Job> jobs_;
  std::atomic<bool> running_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;

  /// Guards `conns_` and every Connection::replies deque.
  std::mutex state_mutex_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::uint64_t next_conn_id_ = 1;
  /// Submissions admitted but not yet submitted to the runtime; part of
  /// the admission bound so a burst cannot overshoot it via the pool.
  std::atomic<std::size_t> pending_submits_{0};

  std::vector<void*> loaded_objects_;  ///< dlopen handles, closed in dtor
  std::mutex objects_mutex_;

  /// Shared-memory lane manager (nullptr when config_.enable_shm is
  /// false). Sessions are keyed by control-connection id; the event loop
  /// polls their doorbells and the worker pool runs their drains.
  std::unique_ptr<shm::ShmServer> shm_;
};

/// Client connect behaviour (first connect and transparent reconnects).
struct IpcClientConfig {
  /// Total window to keep retrying the initial connect with exponential
  /// backoff — lets clients race daemon startup without an external sleep
  /// loop. 0 = single attempt.
  double connect_timeout_s = 0.0;
  std::uint32_t backoff_initial_ms = 20;
  std::uint32_t backoff_max_ms = 250;
};

/// Client half: one persistent connection, one round-trip per call.
///
/// The connection is opened lazily on the first command and reused across
/// calls; the destructor sends BYE. If the daemon dropped the connection
/// in between, idempotent verbs transparently reconnect and retry once;
/// SUBMIT/SUBMITDAG do not (a retry could double-submit) and surface
/// Unavailable instead. A `BUSY <ms>` reply surfaces as a
/// kResourceExhausted status carrying the retry hint.
class IpcClient {
 public:
  explicit IpcClient(std::string socket_path, IpcClientConfig config = {})
      : socket_path_(std::move(socket_path)), config_(config) {}
  IpcClient(const IpcClient&) = delete;
  IpcClient& operator=(const IpcClient&) = delete;
  ~IpcClient();

  /// Sends several commands in one write and reads their replies in order
  /// (pipelining). Returns one raw reply line per command ("OK ...",
  /// "BUSY <ms>", or "ERR ..."), without the trailing newline; per-command
  /// failures stay in their reply strings for the caller to inspect. The
  /// call fails as a whole only on a connection-level error, and is never
  /// retried on a stale connection (a batch may contain SUBMITs).
  StatusOr<std::vector<std::string>> pipeline(
      const std::vector<std::string>& commands);

  /// Submits a shared-object application; returns the instance id.
  StatusOr<std::uint64_t> submit(const std::string& so_path,
                                 const std::string& app_name = "");
  /// Submits an executable JSON DAG application (apps/executable_dag.h).
  StatusOr<std::uint64_t> submit_dag(const std::string& json_path);
  /// Returns (submitted, completed).
  StatusOr<std::pair<std::uint64_t, std::uint64_t>> status();
  /// Returns the one-line STATS snapshot (without the leading "OK ").
  StatusOr<std::string> stats();
  /// Returns the METRICS snapshot, parsed:
  /// {"metrics": {...}, "counters": {...}, "stats": {...}}.
  StatusOr<json::Value> metrics();
  /// Returns the COSTS snapshot, parsed (adapt::OnlineCostEstimator JSON;
  /// {"enabled": false} when the daemon runs without --adapt).
  StatusOr<json::Value> costs();
  /// Blocks server-side until all submitted applications complete.
  Status wait_all();
  /// Asks the daemon to serialize logs and exit its accept loop.
  Status shutdown();

 private:
  Status ensure_connected();
  void disconnect();
  StatusOr<std::string> round_trip(const std::string& command);

  std::string socket_path_;
  IpcClientConfig config_;
  int fd_ = -1;
  LineFramer framer_;
};

}  // namespace cedr::ipc
