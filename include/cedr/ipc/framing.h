#pragma once
// Buffered line framing for the IPC protocol.
//
// The protocol is LF-delimited text (docs/ipc.md). LineFramer replaces the
// byte-at-a-time read loop the first IPC server used: callers append whole
// read(2) chunks and extract as many complete lines as the buffer holds, so
// a pipelined burst of commands costs one syscall instead of one per byte.
//
// Over-long lines are a protocol error, not a truncation: once the buffered
// partial line exceeds kMaxLine the framer latches `overflowed()` and stops
// yielding lines — a clipped-and-parsed line would desync every later
// command on the connection. The server replies `ERR line too long` and
// drops the connection.

#include <cstddef>
#include <string>
#include <string_view>

namespace cedr::ipc {

/// Growable read buffer that yields LF-terminated lines.
class LineFramer {
 public:
  /// Longest accepted line, sized for METRICS replies (a full registry
  /// snapshot is a few KB; 1 MB leaves ample headroom without risking
  /// unbounded buffering from a misbehaving peer).
  static constexpr std::size_t kMaxLine = 1u << 20;

  /// Appends one read(2) chunk to the buffer.
  void append(const char* data, std::size_t size);

  /// Extracts the next complete line (without its LF) into `line`. Returns
  /// false when no complete line is buffered — or the framer has
  /// overflowed, which callers must check before treating false as
  /// "need more bytes".
  bool next_line(std::string& line);

  /// True once a partial line has exceeded kMaxLine. Latched: the
  /// connection cannot be resynchronized and must be dropped.
  [[nodiscard]] bool overflowed() const noexcept { return overflowed_; }

  /// Bytes currently buffered (incomplete tail included).
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buf_.size() - pos_;
  }

  void clear();

 private:
  std::string buf_;
  std::size_t pos_ = 0;  ///< consumed prefix, compacted lazily
  bool overflowed_ = false;
};

}  // namespace cedr::ipc
