#pragma once
// Offline trace analysis.
//
// The paper's daemon "serializes all the logs it has collected relating to
// task execution, performance counter measurements, and so on for later
// offline analysis by the user" (§II-A). This module is that offline
// analysis: it ingests a serialized trace (TraceLog::to_json) and computes
// the summaries the paper's evaluation is built from — per-application
// execution times, per-PE utilization, queue-delay statistics, scheduling
// totals — plus an ASCII Gantt rendering of task placement over time.

#include <map>
#include <string>
#include <vector>

#include "cedr/common/status.h"
#include "cedr/json/json.h"
#include "cedr/trace/trace.h"

namespace cedr::trace {

/// Aggregated view of one serialized execution trace.
struct Report {
  struct AppSummary {
    std::uint64_t instance_id = 0;
    std::string name;
    double arrival = 0.0;
    double execution_time = 0.0;
    std::size_t tasks = 0;
  };
  struct PeSummary {
    std::string name;
    std::size_t tasks = 0;
    double busy_time = 0.0;
    double utilization = 0.0;  ///< busy / makespan
  };

  std::vector<AppSummary> apps;     ///< sorted by arrival time
  std::vector<PeSummary> pes;       ///< sorted by name
  double makespan = 0.0;            ///< last task end / app completion
  double avg_execution_time = 0.0;
  double total_sched_time = 0.0;
  std::size_t sched_rounds = 0;
  std::size_t max_ready_queue = 0;
  /// Task queue-delay statistics (start - enqueue), seconds. Quantiles are
  /// streaming estimates from a log-linear histogram (obs::QuantileHistogram).
  double queue_delay_mean = 0.0;
  double queue_delay_max = 0.0;
  double queue_delay_p50 = 0.0;
  double queue_delay_p95 = 0.0;
  double queue_delay_p99 = 0.0;
  /// Task service-time statistics (end - start), seconds.
  double service_time_mean = 0.0;
  double service_time_p50 = 0.0;
  double service_time_p95 = 0.0;
  double service_time_p99 = 0.0;
  /// Fault-tolerance view (populated when the trace carries fault data).
  std::size_t failed_attempts = 0;   ///< task executions with ok == false
  std::size_t retried_attempts = 0;  ///< task executions with attempt > 0
  /// Tasks whose attempts never produced ok == true (terminal failures,
  /// as opposed to failed_attempts which counts recovered retries too).
  std::size_t failed_tasks = 0;
  std::uint64_t retry_latency_count = 0;  ///< recovered tasks in the histogram
  double retry_latency_mean = 0.0;        ///< mean first-enqueue-to-success
  /// Runtime counter snapshot merged into the trace document by the daemon
  /// ("faults_injected", "tasks_retried", "pes_quarantined", ...).
  std::map<std::string, std::uint64_t> counters;
};

/// Builds a report from an in-memory log.
Report summarize(const TraceLog& log);

/// Builds a report from a serialized trace document.
StatusOr<Report> summarize_json(const json::Value& doc);

/// Reads `path` (a TraceLog::write_json file) and summarizes it.
StatusOr<Report> summarize_file(const std::string& path);

/// Renders the report as human-readable text.
std::string render_text(const Report& report);

/// Renders an ASCII Gantt chart of task executions: one row per PE,
/// `width` character columns across the makespan. Tasks are drawn with the
/// last hex digit of their application instance id, so interleaving across
/// applications is visible at a glance.
std::string render_gantt(const TraceLog& log, std::size_t width = 100);

/// Reconstructs a Chrome trace-event document (the obs::chrome_trace_json
/// format: worker execution spans, scheduling rounds, app lifecycle
/// instants, enqueue->execute flows) from a serialized trace document, so
/// offline traces can be loaded into chrome://tracing / Perfetto.
StatusOr<json::Value> chrome_trace_from_trace_json(const json::Value& doc);

}  // namespace cedr::trace
