#pragma once
// Execution tracing and performance counters.
//
// The CEDR daemon logs, for every task it executes: which application
// instance it belonged to, which kernel it was, which PE ran it, and the
// enqueue/start/finish timestamps. On shutdown the daemon serializes these
// logs for offline analysis; all paper metrics (execution time per app,
// scheduling overhead, runtime overhead) are computed from them. This module
// reproduces that log, plus a named-counter facility standing in for the
// PAPI hardware counters the original runtime can enable (real PAPI needs
// kernel perf support that is unavailable here; the counters count runtime
// events instead, which is what every experiment in the paper consumes).

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "cedr/common/status.h"
#include "cedr/json/json.h"

namespace cedr::trace {

/// One scheduled task execution.
struct TaskRecord {
  std::uint64_t app_instance_id = 0;
  std::string app_name;
  std::uint64_t task_id = 0;
  std::string kernel_name;
  std::string pe_name;        ///< e.g. "cpu1", "fft0", "gpu0"
  std::size_t problem_size = 0;  ///< cost-model size (elements, m*k*n, ...)
  double enqueue_time = 0.0;  ///< seconds, runtime epoch
  double start_time = 0.0;
  double end_time = 0.0;
  std::uint32_t attempt = 0;  ///< 0 = first execution, 1+ = retries
  bool ok = true;             ///< false when this attempt faulted/failed

  [[nodiscard]] double queue_delay() const noexcept {
    return start_time - enqueue_time;
  }
  [[nodiscard]] double service_time() const noexcept {
    return end_time - start_time;
  }
};

/// One application instance lifecycle.
struct AppRecord {
  std::uint64_t app_instance_id = 0;
  std::string app_name;
  double arrival_time = 0.0;     ///< submission over IPC
  double launch_time = 0.0;      ///< first task became ready / thread spawned
  double completion_time = 0.0;  ///< last task completed

  [[nodiscard]] double execution_time() const noexcept {
    return completion_time - launch_time;
  }
};

/// One scheduler invocation (a "scheduling round").
struct SchedRecord {
  double time = 0.0;
  std::size_t ready_tasks = 0;
  std::size_t assigned = 0;
  double decision_time = 0.0;  ///< seconds spent inside the heuristic
};

/// Fixed-bucket latency histogram (log2 buckets). Used for the
/// fault-tolerance layer's retry-latency distribution: the time from a
/// task's first enqueue to its eventual successful completion, counted only
/// for tasks that needed at least one retry.
class LatencyHistogram {
 public:
  /// Bucket 0 covers [0, 2) microseconds (including all sub-microsecond
  /// samples); bucket i >= 1 covers [2^i, 2^(i+1)) microseconds; the last
  /// bucket catches everything above 2^23 us. Exact powers of two land in
  /// the bucket they open (2^i us -> bucket i), including values computed
  /// from seconds that round to a power of two within 1e-9 relative error.
  static constexpr std::size_t kBuckets = 24;

  void record(double seconds);
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double total_seconds() const noexcept;
  [[nodiscard]] double mean_seconds() const noexcept;
  /// Snapshot of the bucket counts, index 0 first.
  [[nodiscard]] std::vector<std::uint64_t> buckets() const;
  /// {"count": N, "total_s": T, "buckets_us_log2": [...]}.
  [[nodiscard]] json::Value to_json() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::uint64_t counts_[kBuckets] = {};
  std::uint64_t total_ = 0;
  double total_seconds_ = 0.0;
};

/// Thread-safe append-only collection of runtime events.
class TraceLog {
 public:
  void add_task(TaskRecord record);
  void add_app(AppRecord record);
  void add_sched(SchedRecord record);
  /// Records one recovered task's first-enqueue-to-success latency.
  void add_retry_latency(double seconds);

  /// Snapshot copies (the runtime keeps appending concurrently).
  [[nodiscard]] std::vector<TaskRecord> tasks() const;
  [[nodiscard]] std::vector<AppRecord> apps() const;
  [[nodiscard]] std::vector<SchedRecord> sched_rounds() const;
  [[nodiscard]] const LatencyHistogram& retry_latency() const noexcept {
    return retry_latency_;
  }

  /// Mean execution time per application, in seconds (0 if no apps).
  [[nodiscard]] double avg_app_execution_time() const;
  /// Total scheduler decision time divided by completed app count.
  [[nodiscard]] double avg_sched_overhead_per_app() const;
  /// Total scheduler decision time across all rounds.
  [[nodiscard]] double total_sched_time() const;

  /// Serializes everything to a JSON document (the daemon shutdown path).
  [[nodiscard]] json::Value to_json() const;
  Status write_json(const std::string& path) const;
  /// Task records as CSV, one row per execution.
  Status write_task_csv(const std::string& path) const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<TaskRecord> tasks_;
  std::vector<AppRecord> apps_;
  std::vector<SchedRecord> sched_;
  LatencyHistogram retry_latency_;
};

/// Named monotonic counters (the PAPI stand-in). Counter creation is
/// serialized; bumping an existing counter is a relaxed atomic add.
class CounterSet {
 public:
  /// Adds `delta` to `name`, creating the counter on first use.
  void add(const std::string& name, std::uint64_t delta = 1);
  /// Current value; 0 for unknown counters.
  [[nodiscard]] std::uint64_t get(const std::string& name) const;
  /// Snapshot of all counters.
  [[nodiscard]] std::map<std::string, std::uint64_t> snapshot() const;
  [[nodiscard]] json::Value to_json() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>> counters_;
};

}  // namespace cedr::trace
