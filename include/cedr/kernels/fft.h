#pragma once
// Fast Fourier Transform kernels.
//
// FFT is the workhorse kernel of all three paper applications: Pulse Doppler
// (256-point), WiFi TX (128-point IFFT) and Lane Detection (1024-point
// FFT/IFFT pairs for frequency-domain convolution). This is the CPU
// reference implementation that every platform must provide ("all APIs in
// this library provide, at a minimum, standard C/C++ implementations");
// accelerator-backed variants live in platform/ and call back into the same
// math through the emulated MMIO device.

#include <span>
#include <vector>

#include "cedr/common/math_util.h"
#include "cedr/common/status.h"

namespace cedr::kernels {

/// In-place iterative radix-2 Cooley-Tukey FFT.
/// `data.size()` must be a power of two in [1, 2^24].
/// `inverse` selects the inverse transform, which includes the 1/N scaling
/// so that ifft(fft(x)) == x.
Status fft_inplace(std::span<cfloat> data, bool inverse);

/// Out-of-place convenience wrapper; `out.size() == in.size()` required.
Status fft(std::span<const cfloat> in, std::span<cfloat> out, bool inverse);

/// O(N^2) direct DFT used as the test oracle for the fast path.
std::vector<cfloat> dft_reference(std::span<const cfloat> in, bool inverse);

/// Returns the two-sided magnitude spectrum |X[k]|.
std::vector<float> magnitude(std::span<const cfloat> spectrum);

/// Precomputed bit-reversal permutation for size n (power of two).
std::vector<std::uint32_t> bit_reverse_table(std::size_t n);

}  // namespace cedr::kernels
