#pragma once
// ZIP: element-wise ("zipped") vector operations.
//
// The paper uses ZIP — pointwise complex product — as the second
// accelerator-backed kernel besides FFT (frequency-domain convolution in
// Lane Detection is FFT -> ZIP -> IFFT). CEDR's ZIP family also covers the
// other pointwise ops the applications need.

#include <span>

#include "cedr/common/math_util.h"
#include "cedr/common/status.h"

namespace cedr::kernels {

/// Element-wise operation selector for zip().
enum class ZipOp {
  kMultiply,          ///< out[i] = a[i] * b[i]
  kConjugateMultiply, ///< out[i] = a[i] * conj(b[i]) (matched filtering)
  kAdd,               ///< out[i] = a[i] + b[i]
  kSubtract,          ///< out[i] = a[i] - b[i]
};

/// Applies `op` element-wise. All three spans must be the same length;
/// `out` may alias `a` or `b`.
Status zip(std::span<const cfloat> a, std::span<const cfloat> b,
           std::span<cfloat> out, ZipOp op);

/// out[i] = a[i] * scale.
void scale(std::span<const cfloat> a, cfloat scale_factor,
           std::span<cfloat> out);

}  // namespace cedr::kernels
