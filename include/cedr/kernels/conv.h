#pragma once
// Convolution kernels: direct and frequency-domain.
//
// Lane Detection implements its convolutions in the frequency domain
// (FFT -> pointwise product -> IFFT) following Abtahi et al. [11 in the
// paper], which is what makes the application FFT-accelerator friendly.
// Direct spatial convolution is kept as the correctness oracle and as the
// CPU-only fallback path.

#include <span>
#include <vector>

#include "cedr/common/math_util.h"
#include "cedr/common/status.h"

namespace cedr::kernels {

/// Full linear convolution of two real sequences (output length a+b-1),
/// computed directly in O(len(a)*len(b)).
std::vector<float> conv1d_direct(std::span<const float> a,
                                 std::span<const float> b);

/// Same result computed via zero-padded FFTs in O(N log N).
StatusOr<std::vector<float>> conv1d_fft(std::span<const float> a,
                                        std::span<const float> b);

/// Circular (cyclic) convolution of equal-length complex sequences via FFT.
Status circular_conv_fft(std::span<const cfloat> a, std::span<const cfloat> b,
                         std::span<cfloat> out);

/// 2-D "same"-size convolution of an image (rows x cols, row-major) with a
/// square kernel (ksize odd), zero padding at borders, computed directly.
Status conv2d_direct(std::span<const float> image, std::size_t rows,
                     std::size_t cols, std::span<const float> kernel,
                     std::size_t ksize, std::span<float> out);

/// Same contract as conv2d_direct but computed with row/column 1-D FFT
/// passes over zero-padded tiles. This is the decomposition Lane Detection
/// dispatches to the FFT accelerator: each row/column transform is one
/// schedulable CEDR task in the application.
Status conv2d_fft(std::span<const float> image, std::size_t rows,
                  std::size_t cols, std::span<const float> kernel,
                  std::size_t ksize, std::span<float> out);

/// Normalized ksize x ksize Gaussian kernel with standard deviation sigma.
std::vector<float> gaussian_kernel(std::size_t ksize, double sigma);

}  // namespace cedr::kernels
