#pragma once
// WiFi TX baseband chain (802.11a-style).
//
// The paper's WiFi TX application "generates packets of 64 bits and prepares
// for transmission over an arbitrary channel through scrambler, encoder,
// modulation, and forward error correction processes" and "relies on a
// 128-point inverse FFT for each packet transmitted". These are the stage
// kernels; the end-to-end pipeline lives in apps/. The receive-side inverses
// (descrambler, deinterleaver, Viterbi decoder, QPSK slicer) are implemented
// as correctness oracles for round-trip property tests.

#include <cstdint>
#include <span>
#include <vector>

#include "cedr/common/math_util.h"
#include "cedr/common/status.h"

namespace cedr::kernels {

/// Bits are one bool per element throughout this module.
using BitVec = std::vector<std::uint8_t>;

/// 802.11 frame-synchronous scrambler, polynomial x^7 + x^4 + 1.
/// Self-inverse: scramble(scramble(x, s), s) == x. `seed` is the 7-bit
/// initial LFSR state (nonzero).
BitVec scramble(std::span<const std::uint8_t> bits, std::uint8_t seed);

/// Rate-1/2, constraint-length-7 convolutional encoder with the standard
/// generator polynomials 133/171 (octal). Output is 2*len(input) bits; the
/// encoder is flushed with 6 tail zeros by the caller if termination is
/// desired.
BitVec convolutional_encode(std::span<const std::uint8_t> bits);

/// Hard-decision Viterbi decoder matching convolutional_encode. Input length
/// must be even. Decodes len(input)/2 bits assuming the encoder started in
/// state 0; a terminated trellis (6 tail zeros encoded) gives exact recovery.
StatusOr<BitVec> viterbi_decode(std::span<const std::uint8_t> coded);

/// Block interleaver: writes row-major into a (len/depth) x depth matrix and
/// reads column-major. `bits.size()` must be divisible by depth.
StatusOr<BitVec> interleave(std::span<const std::uint8_t> bits,
                            std::size_t depth);
/// Inverse of interleave with identical constraints.
StatusOr<BitVec> deinterleave(std::span<const std::uint8_t> bits,
                              std::size_t depth);

/// Maps bit pairs to Gray-coded QPSK symbols (unit energy). Input length
/// must be even.
StatusOr<std::vector<cfloat>> qpsk_modulate(std::span<const std::uint8_t> bits);

/// Nearest-symbol hard demapper, inverse of qpsk_modulate.
BitVec qpsk_demodulate(std::span<const cfloat> symbols);

/// IEEE 802.3 CRC-32 (reflected, polynomial 0xEDB88320) over whole bytes.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// Packs bits (LSB-first per byte) into bytes; size must be a multiple of 8.
StatusOr<std::vector<std::uint8_t>> pack_bits(std::span<const std::uint8_t> bits);
/// Unpacks bytes into bits, LSB-first.
BitVec unpack_bytes(std::span<const std::uint8_t> bytes);

}  // namespace cedr::kernels
