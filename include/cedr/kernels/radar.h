#pragma once
// Pulse Doppler radar processing kernels.
//
// The paper's Pulse Doppler application "calculates velocity of an object,
// by measuring distance of the object using 256-point FFTs, and measuring
// the frequency shift between transmitted and emitted signals". The chain
// is: per-pulse matched filtering (range compression) via FFT -> conjugate
// ZIP -> IFFT, followed by a Doppler FFT across pulses in each range bin,
// then a 2-D peak search in the range-Doppler map. A synthetic echo
// generator with known ground truth makes end-to-end accuracy assertable.

#include <cstddef>
#include <span>
#include <vector>

#include "cedr/common/math_util.h"
#include "cedr/common/rng.h"
#include "cedr/common/status.h"

namespace cedr::kernels {

/// Dimensions and physics of a pulse-Doppler dwell.
struct RadarParams {
  std::size_t num_pulses = 128;       ///< pulses per coherent interval
  std::size_t samples_per_pulse = 256;///< range samples (FFT size; power of 2)
  double prf_hz = 10'000.0;           ///< pulse repetition frequency
  double sample_rate_hz = 1.0e6;      ///< fast-time sampling rate
  double carrier_hz = 3.0e9;          ///< RF carrier for velocity conversion
  double speed_of_light = 2.99792458e8;
};

/// Ground truth / estimate of a single dominant scatterer.
struct RadarTarget {
  std::size_t range_bin = 0;   ///< delay in fast-time samples
  double doppler_hz = 0.0;     ///< Doppler shift
  double velocity_mps = 0.0;   ///< radial velocity implied by doppler_hz
  double magnitude = 0.0;      ///< peak response amplitude
};

/// Linear-FM chirp used as the transmit pulse (length = chirp_len samples,
/// sweeping bandwidth_hz across its duration).
std::vector<cfloat> make_chirp(std::size_t chirp_len, double bandwidth_hz,
                               double sample_rate_hz);

/// Builds a num_pulses x samples_per_pulse slow-time/fast-time data cube
/// containing the echo of `target` (delayed chirp with per-pulse Doppler
/// rotation) plus white Gaussian noise of the given standard deviation.
std::vector<cfloat> synthesize_echo(const RadarParams& params,
                                    std::span<const cfloat> chirp,
                                    const RadarTarget& target,
                                    double noise_stddev, Rng& rng);

/// Range compression of one pulse: out = IFFT(FFT(pulse) * conj(FFT(chirp))).
/// All spans must equal params.samples_per_pulse; `chirp_freq` is the
/// precomputed FFT of the zero-padded chirp.
Status matched_filter(std::span<const cfloat> pulse,
                      std::span<const cfloat> chirp_freq,
                      std::span<cfloat> out);

/// Doppler processing: FFT across pulses for every range bin of a
/// range-compressed cube (num_pulses x samples_per_pulse, pulse-major).
/// num_pulses must be a power of two. Output has the same layout, indexed
/// [doppler_bin * samples_per_pulse + range_bin].
Status doppler_fft(std::span<const cfloat> compressed, std::size_t num_pulses,
                   std::size_t samples_per_pulse, std::span<cfloat> out);

/// Finds the dominant peak of a range-Doppler map and converts its Doppler
/// bin to Hz and radial velocity using `params`. Doppler bins above
/// num_pulses/2 are interpreted as negative frequencies.
RadarTarget find_peak(std::span<const cfloat> range_doppler,
                      const RadarParams& params);

}  // namespace cedr::kernels
