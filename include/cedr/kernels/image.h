#pragma once
// Image-processing kernels for the Lane Detection application.
//
// Lane Detection is "a convolution intensive routine from autonomous
// vehicles domain" whose convolutions run in the frequency domain
// (FFT + ZIP). The pipeline implemented here: RGB -> grayscale -> Gaussian
// smoothing (FFT convolution) -> Sobel gradients -> magnitude threshold ->
// Hough transform -> left/right lane-line extraction. A synthetic road-image
// generator provides ground truth, substituting for the paper's camera
// frames (see DESIGN.md §2).

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "cedr/common/rng.h"
#include "cedr/common/status.h"

namespace cedr::kernels {

/// Row-major single-channel float image.
struct GrayImage {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<float> pixels;  ///< rows * cols, values nominally in [0, 1]

  GrayImage() = default;
  GrayImage(std::size_t r, std::size_t c) : rows(r), cols(c), pixels(r * c) {}
  [[nodiscard]] float at(std::size_t r, std::size_t c) const {
    return pixels[r * cols + c];
  }
  [[nodiscard]] float& at(std::size_t r, std::size_t c) {
    return pixels[r * cols + c];
  }
};

/// Row-major interleaved RGB image, 8 bits per channel.
struct RgbImage {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::uint8_t> pixels;  ///< rows * cols * 3

  RgbImage() = default;
  RgbImage(std::size_t r, std::size_t c) : rows(r), cols(c), pixels(r * c * 3) {}
};

/// A detected line in Hough normal form: x cos(theta) + y sin(theta) = rho,
/// with x = column and y = row.
struct HoughLine {
  double rho = 0.0;    ///< signed distance from origin, in pixels
  double theta = 0.0;  ///< normal angle in radians, [0, pi)
  std::uint32_t votes = 0;
};

/// Result of the full lane-detection pipeline.
struct LaneResult {
  std::optional<HoughLine> left;   ///< line with negative image slope
  std::optional<HoughLine> right;  ///< line with positive image slope
  std::size_t edge_pixels = 0;     ///< pixels surviving the threshold
};

/// ITU-R BT.601 luma conversion to [0, 1] floats.
GrayImage rgb_to_gray(const RgbImage& rgb);

/// Gaussian smoothing via frequency-domain convolution (kernels/conv.h).
StatusOr<GrayImage> gaussian_blur_fft(const GrayImage& in, std::size_t ksize,
                                      double sigma);

/// 3x3 Sobel operator; returns the gradient magnitude image.
GrayImage sobel_magnitude(const GrayImage& in);

/// Binary threshold: out = in >= threshold ? 1 : 0.
GrayImage threshold(const GrayImage& in, float level);

/// Hough line transform over nonzero pixels of a binary image.
/// Returns up to `max_lines` peak lines sorted by votes (descending), with
/// non-maximum suppression over a (rho, theta) neighborhood.
std::vector<HoughLine> hough_lines(const GrayImage& binary,
                                   std::size_t max_lines,
                                   std::uint32_t min_votes);

/// Ground truth for the synthetic road generator.
struct RoadTruth {
  double left_slope = 0.0;    ///< dx/dy of the left lane marking
  double left_offset = 0.0;   ///< column of the left marking at the bottom row
  double right_slope = 0.0;
  double right_offset = 0.0;
};

/// Renders a synthetic straight-road scene: dark asphalt, two bright lane
/// markings converging toward a vanishing point, plus optional noise.
RgbImage synthesize_road(std::size_t rows, std::size_t cols, RoadTruth& truth,
                         double noise_stddev, Rng& rng);

}  // namespace cedr::kernels
