#pragma once
// Matrix multiplication kernels.
//
// The Fig. 6/7 hardware configuration includes an MMULT accelerator on the
// ZCU102 fabric; this is its CPU reference implementation (row-major GEMM)
// plus the cache-blocked variant used for larger operands.

#include <span>

#include "cedr/common/status.h"

namespace cedr::kernels {

/// C(m x n) = A(m x k) * B(k x n), row-major, single precision.
/// Span sizes must match the stated shapes exactly.
Status mmult(std::span<const float> a, std::span<const float> b,
             std::span<float> c, std::size_t m, std::size_t k, std::size_t n);

/// Cache-blocked GEMM with the same contract as mmult(). `block` of 0 picks
/// a default (64).
Status mmult_blocked(std::span<const float> a, std::span<const float> b,
                     std::span<float> c, std::size_t m, std::size_t k,
                     std::size_t n, std::size_t block = 0);

/// out(n x m) = transpose of in(m x n).
void transpose(std::span<const float> in, std::span<float> out, std::size_t m,
               std::size_t n);

}  // namespace cedr::kernels
