#pragma once
// Minimal leveled logger.
//
// The CEDR daemon is long-running and multi-threaded; log emission is
// serialized by an internal mutex and each record carries a monotonic
// timestamp and the emitting thread id, mirroring the diagnostic logs of the
// original runtime. Logging defaults to kWarn so benchmarks stay quiet.

#include <sstream>
#include <string>
#include <string_view>

namespace cedr::log {

enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Sets the global minimum level; records below it are dropped.
void set_level(Level level) noexcept;
Level level() noexcept;

/// Emits one record. Thread-safe.
void write(Level level, std::string_view component, std::string_view message);

/// Stream-style builder: LogLine(Level::kInfo, "runtime") << "x=" << x;
class LogLine {
 public:
  LogLine(Level level, std::string_view component)
      : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { write(level_, component_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Level level_;
  std::string_view component_;
  std::ostringstream stream_;
};

}  // namespace cedr::log

#define CEDR_LOG(severity, component)                               \
  if (::cedr::log::Level::severity < ::cedr::log::level()) {        \
  } else                                                            \
    ::cedr::log::LogLine(::cedr::log::Level::severity, component)
