#pragma once
// Lightweight Status / StatusOr error-reporting types.
//
// CEDR's public surface crosses a C ABI (cedr.h) and several thread
// boundaries, so exceptions are confined to construction-time failures of
// internal objects; every fallible operation on the public surface reports
// through Status instead.

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace cedr {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kUnavailable,
  kResourceExhausted,
  kAborted,
};

/// Human-readable name for a StatusCode ("OK", "INVALID_ARGUMENT", ...).
std::string_view status_code_name(StatusCode code) noexcept;

/// Result of a fallible operation: a code plus an optional message.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() noexcept : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() noexcept { return Status(); }

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "CODE_NAME: message" rendering for logs and test failures.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgument(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status NotFound(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status AlreadyExists(std::string msg) {
  return {StatusCode::kAlreadyExists, std::move(msg)};
}
inline Status FailedPrecondition(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
inline Status OutOfRange(std::string msg) {
  return {StatusCode::kOutOfRange, std::move(msg)};
}
inline Status Unimplemented(std::string msg) {
  return {StatusCode::kUnimplemented, std::move(msg)};
}
inline Status Internal(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}
inline Status Unavailable(std::string msg) {
  return {StatusCode::kUnavailable, std::move(msg)};
}
inline Status ResourceExhausted(std::string msg) {
  return {StatusCode::kResourceExhausted, std::move(msg)};
}
inline Status Aborted(std::string msg) {
  return {StatusCode::kAborted, std::move(msg)};
}

/// Either a value of type T or a non-OK Status describing why it is absent.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT implicit
    assert(!std::get<Status>(rep_).ok() && "OK status carries no value");
  }
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT implicit

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(rep_);
  }
  [[nodiscard]] Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(rep_);
  }
  /// Precondition: ok().
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] T&& operator*() && { return std::move(*this).value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

/// Propagates a non-OK status out of the enclosing function.
#define CEDR_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::cedr::Status cedr_status_ = (expr);            \
    if (!cedr_status_.ok()) return cedr_status_;     \
  } while (false)

}  // namespace cedr
