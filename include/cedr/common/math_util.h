#pragma once
// Small numeric helpers shared by kernels, platform models and benchmarks.

#include <algorithm>
#include <cassert>
#include <cmath>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

namespace cedr {

using cfloat = std::complex<float>;

inline constexpr double kPi = 3.14159265358979323846;

/// True when n is a power of two (n >= 1).
constexpr bool is_power_of_two(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// log2 of a power of two. Precondition: is_power_of_two(n).
constexpr unsigned log2_exact(std::size_t n) noexcept {
  unsigned bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  return bits;
}

/// Smallest power of two >= n (n >= 1).
constexpr std::size_t next_power_of_two(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Arithmetic mean; 0 for an empty range.
inline double mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

/// Population standard deviation; 0 for fewer than two samples.
inline double stddev(std::span<const double> values) noexcept {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size()));
}

/// Maximum |a[i] - b[i]| across two equal-length ranges.
inline float max_abs_diff(std::span<const cfloat> a,
                          std::span<const cfloat> b) noexcept {
  assert(a.size() == b.size());
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

/// Sum of |x|^2 (signal energy), used for Parseval property checks.
inline double energy(std::span<const cfloat> x) noexcept {
  double acc = 0.0;
  for (const auto& v : x) acc += static_cast<double>(std::norm(v));
  return acc;
}

/// Clamps v to [lo, hi].
template <typename T>
constexpr T clamp(T v, T lo, T hi) noexcept {
  return std::min(std::max(v, lo), hi);
}

}  // namespace cedr
