#pragma once
// Deterministic pseudo-random number generation.
//
// Experiments average 25 seeded trials; every stochastic component (arrival
// jitter, synthetic data, noise injection) draws from an explicitly seeded
// Rng so that runs are bit-reproducible across machines. The generator is
// xoshiro256++ seeded via splitmix64 (public-domain algorithms by
// Blackman & Vigna).

#include <array>
#include <cstdint>

namespace cedr {

/// Small, fast, seedable PRNG. Not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept {
    reseed(seed);
  }

  /// Re-initializes the state from a 64-bit seed.
  void reseed(std::uint64_t seed) noexcept {
    // splitmix64 expansion of the seed into 256 bits of state.
    auto next = [&seed]() noexcept {
      seed += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return z ^ (z >> 31);
    };
    for (auto& word : state_) word = next();
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Lemire's nearly-divisionless bounded generation.
    const auto x = next_u64();
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) * bound) >> 64);
  }

  /// Standard normal variate (Box-Muller, one value per call).
  double normal() noexcept;

  /// Gaussian with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace cedr
