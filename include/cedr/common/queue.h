#pragma once
// Thread-safe queues used by the runtime.
//
// BlockingQueue is the MPMC mailbox between the CEDR main event loop and its
// worker threads (Fig. 1 of the paper): producers push scheduled tasks,
// each worker blocks in pop() until work or shutdown arrives. close()
// releases all waiters, which is how the daemon tears worker threads down.

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <span>
#include <utility>

namespace cedr {

/// Unbounded MPMC FIFO with blocking pop and cooperative shutdown.
template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Enqueues an item. Returns false if the queue has been closed.
  bool push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Enqueues a whole batch under one lock acquisition with one wakeup —
  /// the runtime's batched dispatch (one signal per worker per scheduling
  /// round instead of one per task). Returns false (enqueuing nothing) if
  /// the queue has been closed.
  bool push_batch(std::span<T> batch) {
    if (batch.empty()) return true;
    {
      std::lock_guard lock(mutex_);
      if (closed_) return false;
      for (T& item : batch) items_.push_back(std::move(item));
    }
    // One notify wakes the (single-consumer mailbox) worker; it drains the
    // rest without blocking since the queue stays non-empty.
    cv_.notify_all();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  /// Returns nullopt only on closed-and-empty.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop. Returns nullopt when empty.
  std::optional<T> try_pop() {
    std::lock_guard lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Closes the queue: pending items remain poppable, pushes are rejected,
  /// and blocked poppers wake once the queue drains.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace cedr
