#pragma once
// Wall-clock stopwatch for overhead accounting in the threaded runtime.

#include <chrono>

namespace cedr {

/// Monotonic stopwatch; elapsed() reports seconds since construction/reset.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since the last reset.
  [[nodiscard]] double elapsed() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Microseconds elapsed since the last reset.
  [[nodiscard]] double elapsed_us() const noexcept { return elapsed() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cedr
